(* The observability surface: registry semantics (get-or-create, label
   series, kind clashes), quantile estimation, exposition formats, the
   engine instrumentation's exactness under domains=4 (lock-free cells
   must not lose increments in a race), the telemetry ring's overflow
   accounting, the HTTP exposition endpoint, and the flight recorder's
   incident reports. *)

module Engine = Alphonse.Engine
module Var = Alphonse.Var
module Func = Alphonse.Func
module Parallel = Alphonse.Parallel
module Metrics = Alphonse.Metrics
module Telemetry = Alphonse.Telemetry
module Flight = Alphonse.Flight
module Serve = Alphonse.Serve
module Json = Alphonse.Json

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_basics () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "widgets_total" ~help:"widgets" in
  Metrics.inc c;
  Metrics.add c 4;
  checki "counter accumulates" 5 (Metrics.counter_value c);
  (* get-or-create: same (name, labels) resolves to the same cell *)
  let c' = Metrics.counter reg "widgets_total" in
  Metrics.inc c';
  checki "same cell through re-registration" 6 (Metrics.counter_value c);
  (* distinct label sets are distinct series *)
  let ok = Metrics.counter reg "rpcs_total" ~labels:[ ("code", "200") ] in
  let bad = Metrics.counter reg "rpcs_total" ~labels:[ ("code", "500") ] in
  Metrics.inc ok;
  Metrics.inc ok;
  Metrics.inc bad;
  checki "labeled series independent" 2 (Metrics.counter_value ok);
  checki "labeled series independent (2)" 1 (Metrics.counter_value bad);
  let g = Metrics.gauge reg "depth" in
  Metrics.set g 3.5;
  Alcotest.(check (float 1e-9)) "gauge holds last set" 3.5 (Metrics.gauge_value g);
  (* a name registered as one kind cannot come back as another *)
  (match Metrics.gauge reg "widgets_total" with
  | _ -> Alcotest.fail "expected Invalid_argument on kind clash"
  | exception Invalid_argument _ -> ())

let test_histogram () =
  let reg = Metrics.create () in
  let h =
    Metrics.histogram reg "lat_seconds" ~bounds:[| 1e-3; 1e-2; 1e-1 |]
  in
  List.iter (Metrics.observe h) [ 5e-4; 5e-3; 5e-3; 5e-2; 2.0 ];
  checki "count" 5 (Metrics.histogram_count h);
  checkb "sum" true (abs_float (Metrics.histogram_sum h -. 2.0605) < 1e-6);
  (* bounds get an implicit +Inf bucket; counts are per-bucket *)
  Alcotest.(check (array int))
    "bucket counts" [| 1; 2; 1; 1 |] (Metrics.histogram_counts h)

let test_quantiles () =
  let bounds = [| 1e-3; 1e-2; 1e-1; infinity |] in
  (* everything in the (1e-3, 1e-2] bucket: all quantiles interpolate
     inside it, geometrically, and stay ordered *)
  let counts = [| 0; 100; 0; 0 |] in
  let p50, p90, p99 = Metrics.quantiles ~counts ~bounds in
  checkb "p50 inside its bucket" true (p50 > 1e-3 && p50 <= 1e-2);
  checkb "p99 inside its bucket" true (p99 > 1e-3 && p99 <= 1e-2);
  checkb "ordered" true (p50 <= p90 && p90 <= p99);
  (* empty histogram: nan, not an exception *)
  let p50, _, _ = Metrics.quantiles ~counts:[| 0; 0; 0; 0 |] ~bounds in
  checkb "empty is nan" true (Float.is_nan p50);
  (* mass split across buckets: the p99 rank lands in the top one *)
  let p50, _, p99 = Metrics.quantiles ~counts:[| 90; 0; 10; 0 |] ~bounds in
  checkb "p50 in bottom bucket" true (p50 <= 1e-3);
  checkb "p99 in top finite bucket" true (p99 > 1e-2 && p99 <= 1e-1)

let test_exposition () =
  let reg = Metrics.create ~namespace:"t" () in
  let c = Metrics.counter reg "reqs_total" ~help:"requests" ~labels:[ ("code", "200") ] in
  Metrics.inc c;
  Metrics.inc c;
  let h = Metrics.histogram reg "lat_seconds" ~bounds:[| 0.01; 0.1 |] in
  Metrics.observe h 0.005;
  Metrics.observe h 0.05;
  let text = Metrics.to_prometheus reg in
  List.iter
    (fun needle ->
      checkb (Printf.sprintf "prometheus text has %S" needle) true
        (contains text needle))
    [
      "# HELP t_reqs_total requests";
      "# TYPE t_reqs_total counter";
      "t_reqs_total{code=\"200\"} 2";
      "# TYPE t_lat_seconds histogram";
      "t_lat_seconds_bucket{le=\"0.01\"} 1";
      "t_lat_seconds_bucket{le=\"+Inf\"} 2";
      "t_lat_seconds_count 2";
    ];
  let j = Metrics.to_json reg in
  checks "json schema tag" "alphonse-metrics/1"
    (Option.value ~default:"?" (Option.bind (Json.member "schema" j) Json.to_str));
  (* the JSON rendering round-trips through the in-repo parser *)
  checkb "json reparses" true
    (Json.of_string_opt (Json.to_string j) <> None)

(* ------------------------------------------------------------------ *)
(* Engine instrumentation: exact totals, serial and under domains=4    *)
(* ------------------------------------------------------------------ *)

(* A fan: one input, [width] siblings, a top sum — enough level width
   that a 4-domain settle genuinely races the counter cells. *)
let fan ?scheduling ~width () =
  let eng = Engine.create ?scheduling ~default_strategy:Engine.Eager () in
  let a = Var.create eng ~name:"a" 1 in
  let mids =
    List.init width (fun i ->
        Func.create eng ~name:(Printf.sprintf "mid%d" i) (fun _ () ->
            Var.get a + i))
  in
  let top =
    Func.create eng ~name:"top" (fun _ () ->
        List.fold_left (fun acc f -> acc + Func.call f ()) 0 mids)
  in
  (eng, a, top)

let check_engine_counters ?scheduling ~rounds ~width () =
  let eng, a, top = fan ?scheduling ~width () in
  let reg = Metrics.create () in
  Engine.set_metrics eng (Some reg);
  ignore (Func.call top ());
  for i = 1 to rounds do
    (* values never repeat the initial 1: a same-value write is cut off
       at the cell and would make the settle a no-op session *)
    Var.set a (100 + i);
    Engine.stabilize eng;
    ignore (Func.call top ())
  done;
  let st = Engine.stats eng in
  let counter ?labels name = Metrics.counter_value (Metrics.counter reg ?labels name) in
  (* the registry must agree exactly with the engine's own (serially
     merged) stats — a lost lock-free increment shows up here *)
  checki "first executions exact" st.Engine.first_executions
    (counter "executions_total" ~labels:[ ("kind", "first") ]);
  checki "re-executions exact"
    (st.Engine.executions - st.Engine.first_executions)
    (counter "executions_total" ~labels:[ ("kind", "re") ]);
  checki "cache hits exact" st.Engine.cache_hits (counter "cache_hits_total");
  checki "settle steps exact" st.Engine.settle_steps
    (counter "settle_steps_total");
  checki "parallel levels exact" st.Engine.par_levels
    (counter "parallel_levels_total");
  checki "parallel tasks exact" st.Engine.par_tasks
    (counter "parallel_tasks_total");
  (eng, reg, st)

let test_serial_counters () =
  let _, reg, _ = check_engine_counters ~rounds:8 ~width:8 () in
  checki "serial settles counted" 8
    (Metrics.counter_value
       (Metrics.counter reg "settles_total" ~labels:[ ("mode", "serial") ]))

let test_parallel_counters_race () =
  let _, reg, st =
    check_engine_counters
      ~scheduling:(Parallel.scheduling ~domains:4)
      ~rounds:20 ~width:32 ()
  in
  checkb "parallel machinery actually ran" true (st.Engine.par_tasks > 0);
  checki "parallel settles counted" 20
    (Metrics.counter_value
       (Metrics.counter reg "settles_total" ~labels:[ ("mode", "parallel") ]));
  (* per-lane pool counters: lanes together account for work *)
  let pool_total =
    List.fold_left
      (fun acc lane ->
        acc
        + Metrics.counter_value
            (Metrics.counter reg "pool_tasks_total"
               ~labels:[ ("lane", string_of_int lane) ]))
      0 [ 0; 1; 2; 3 ]
  in
  checkb "pool lanes saw work" true (pool_total > 0)

(* ------------------------------------------------------------------ *)
(* Telemetry ring overflow accounting (the silent-discard bugfix)      *)
(* ------------------------------------------------------------------ *)

let test_ring_overflow () =
  let tm = Telemetry.create ~capacity:4 () in
  let reg = Metrics.create () in
  Telemetry.set_metrics tm (Some reg);
  for i = 1 to 10 do
    Telemetry.emit tm (Telemetry.Marked { id = i; name = "x"; cause = None })
  done;
  checki "ring keeps only the window" 4 (List.length (Telemetry.events tm));
  checki "total emitted" 10 (Telemetry.total_emitted tm);
  checki "drops counted" 6 (Telemetry.dropped tm);
  checki "drops surfaced in the registry" 6
    (Metrics.counter_value (Metrics.counter reg "telemetry_dropped_total"));
  (* and in the trace export, so a truncated trace is never mistaken
     for a complete one *)
  checkb "trace declares droppedEvents" true
    (contains (Telemetry.to_chrome_trace tm) "droppedEvents")

(* ------------------------------------------------------------------ *)
(* HTTP exposition endpoint                                            *)
(* ------------------------------------------------------------------ *)

let http_get ~port target =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" target in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 512 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
      in
      drain ();
      Buffer.contents buf)

let test_serve_roundtrip () =
  let reg = Metrics.create () in
  Metrics.inc (Metrics.counter reg "pings_total");
  let srv =
    Serve.create ~port:0
      [
        ("/metrics", fun () -> Serve.text (Metrics.to_prometheus reg));
        ("/healthz", fun () -> Serve.text "ok\n");
        ("/boom", fun () -> failwith "handler bug");
      ]
  in
  let port = Serve.port srv in
  checkb "port 0 picked a real port" true (port > 0);
  let client =
    Domain.spawn (fun () ->
        let m = http_get ~port "/metrics" in
        let h = http_get ~port "/healthz?verbose=1" in
        let missing = http_get ~port "/nope" in
        let err = http_get ~port "/boom" in
        (m, h, missing, err))
  in
  Serve.serve ~max_requests:4 srv;
  let m, h, missing, err = Domain.join client in
  Serve.close srv;
  checkb "metrics scrape is 200" true (contains m "HTTP/1.0 200");
  checkb "metrics body served" true (contains m "alphonse_pings_total 1");
  checkb "prometheus content type" true (contains m "text/plain; version=0.0.4");
  checkb "query string stripped" true (contains h "ok\n");
  checkb "unknown path is 404" true (contains missing "HTTP/1.0 404");
  checkb "raising handler is 503" true (contains err "HTTP/1.0 503")

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let test_flight_incident () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "alphonse-test-incidents-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  let tm = Telemetry.create ~capacity:64 () in
  let reg = Metrics.create () in
  let eng = Engine.create ~max_retries:3 () in
  Engine.set_telemetry eng (Some tm);
  Engine.set_metrics eng (Some reg);
  let fl = Flight.arm ~metrics:reg ~dir ~last:32 tm in
  let a = Var.create eng ~name:"a" 1 in
  let f =
    Func.create eng ~name:"f" (fun _ () ->
        if Var.get a = 13 then failwith "unlucky";
        Var.get a * 2)
  in
  checki "graph works" 2 (Func.call f ());
  checki "no incident yet" 0 (Flight.written fl);
  Var.set a 13;
  (match Func.call f () with
  | _ -> Alcotest.fail "expected raise"
  | exception Failure _ -> ());
  (* the quarantine fired the recorder *)
  checki "one incident report" 1 (Flight.written fl);
  let path = List.hd (Flight.reports fl) in
  checkb "report under the armed dir" true (contains path dir);
  let body =
    In_channel.with_open_bin path (fun ic ->
        really_input_string ic (In_channel.length ic |> Int64.to_int))
  in
  let j =
    match Json.of_string_opt body with
    | Some j -> j
    | None -> Alcotest.fail "incident report is not valid JSON"
  in
  let str path_keys =
    List.fold_left (fun acc k -> Option.bind acc (Json.member k)) (Some j)
      path_keys
    |> Fun.flip Option.bind Json.to_str
  in
  checks "schema" "alphonse-incident/1" (Option.value ~default:"?" (str [ "schema" ]));
  checks "trigger kind" "quarantine"
    (Option.value ~default:"?" (str [ "trigger"; "kind" ]));
  checks "trigger names the instance" "f"
    (Option.value ~default:"?" (str [ "trigger"; "name" ]));
  checkb "events window present" true
    (Option.bind (Json.member "events" j) Json.to_list <> None);
  checkb "metrics snapshot embedded" true
    (match Option.bind (Json.member "metrics" j) (Json.member "schema") with
    | Some (Json.Str "alphonse-metrics/1") -> true
    | _ -> false);
  rm_rf dir

let () =
  Alcotest.run "metrics"
    [
      ( "registry",
        [
          Alcotest.test_case "counters, gauges, labels, kinds" `Quick
            test_registry_basics;
          Alcotest.test_case "histogram buckets" `Quick test_histogram;
          Alcotest.test_case "quantile estimation" `Quick test_quantiles;
          Alcotest.test_case "prometheus and json exposition" `Quick
            test_exposition;
        ] );
      ( "engine",
        [
          Alcotest.test_case "serial counters exact" `Quick
            test_serial_counters;
          Alcotest.test_case "domains=4 counters exact under race" `Quick
            test_parallel_counters_race;
        ] );
      ( "telemetry",
        [ Alcotest.test_case "ring overflow is counted" `Quick test_ring_overflow ] );
      ( "serve",
        [ Alcotest.test_case "scrape round-trip" `Quick test_serve_roundtrip ] );
      ( "flight",
        [
          Alcotest.test_case "quarantine writes an incident report" `Quick
            test_flight_incident;
        ] );
    ]
