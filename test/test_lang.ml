(* Tests for the Alphonse-L front end: lexer, parser, pretty-printer
   round-trip, type checker, and the conventional interpreter. *)

open Lang
module P = Parser
module Tc = Typecheck

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let parse_ok src =
  match P.parse src with
  | Ok m -> m
  | Error e -> Alcotest.failf "parse failed: %s" e

let check_ok m =
  match Tc.check m with
  | Ok env -> env
  | Error es ->
    Alcotest.failf "typecheck failed: %a" Fmt.(list ~sep:semi Tc.pp_error) es

let compile src = check_ok (parse_ok src)

let run_ok ?(fuel = 10_000_000) src =
  let env = compile src in
  let out = Interp.run ~fuel env in
  match out.Interp.error with
  | None -> out.Interp.output
  | Some e -> Alcotest.failf "runtime error: %s" e

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let test_lexer_basics () =
  let toks = Lexer.tokenize "MODULE m; x := 1 + 2; (* plain comment *)" in
  let kinds = List.map (fun t -> t.Lexer.tok) toks in
  checkb "token stream" true
    (kinds
    = Lexer.
        [ KW "MODULE"; IDENT "m"; SEMI; IDENT "x"; ASSIGN; INT 1; PLUS;
          INT 2; SEMI; EOF ])

let test_lexer_pragmas () =
  let toks = Lexer.tokenize "(*MAINTAINED*) (*CACHED LRU 8*) (*UNCHECKED*)" in
  let kinds = List.map (fun t -> t.Lexer.tok) toks in
  checkb "pragmas" true
    (kinds
    = Lexer.
        [
          PRAGMA (Ast.Maintained Ast.S_default);
          PRAGMA (Ast.Cached (Ast.S_default, Ast.P_lru 8));
          UNCHECKED_PRAGMA;
          EOF;
        ])

let test_lexer_nested_comment () =
  let toks = Lexer.tokenize "1 (* a (* nested *) b *) 2" in
  let kinds = List.map (fun t -> t.Lexer.tok) toks in
  checkb "nested comments skipped" true (kinds = Lexer.[ INT 1; INT 2; EOF ])

let test_lexer_text_escapes () =
  let toks = Lexer.tokenize {|"a\nb\"c\\d"|} in
  match List.map (fun t -> t.Lexer.tok) toks with
  | [ Lexer.TEXT s; Lexer.EOF ] -> checks "escapes" "a\nb\"c\\d" s
  | _ -> Alcotest.fail "expected one text token"

let test_lexer_errors () =
  let bad src =
    match Lexer.tokenize src with
    | exception Lexer.Lex_error _ -> true
    | _ -> false
  in
  checkb "bad char" true (bad "a $ b");
  checkb "unterminated text" true (bad "\"abc");
  checkb "unterminated comment" true (bad "(* abc");
  (* unknown words in comments are ordinary comments, but a recognized
     pragma with bad arguments is an error *)
  checkb "pragma with bad argument" true (bad "(*MAINTAINED WEIRD*)");
  checkb "bad cache size" true (bad "(*CACHED LRU x*)");
  checkb "unknown comment is fine" false (bad "(*FROBNICATE*)")

(* ------------------------------------------------------------------ *)
(* Parser + pretty round-trip                                          *)
(* ------------------------------------------------------------------ *)

let test_parse_samples () =
  List.iter
    (fun (name, src) ->
      match P.parse src with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "sample %s failed to parse: %s" name e)
    Samples.all

let test_roundtrip_samples () =
  List.iter
    (fun (name, src) ->
      let m = parse_ok src in
      let printed = Pretty.to_string m in
      match P.parse printed with
      | Error e ->
        Alcotest.failf "sample %s roundtrip re-parse failed: %s\n%s" name e
          printed
      | Ok m2 ->
        let p2 = Pretty.to_string m2 in
        if printed <> p2 then
          Alcotest.failf "sample %s not a fixpoint of print∘parse" name)
    Samples.all

let test_parse_errors () =
  let bad src = match P.parse src with Ok _ -> false | Error _ -> true in
  checkb "empty" true (bad "");
  checkb "missing end name" true (bad "MODULE M; BEGIN END.");
  checkb "wrong end name" true (bad "MODULE M; BEGIN END N.");
  checkb "assignment to literal" true (bad "MODULE M; BEGIN 1 := 2 END M.");
  checkb "expression statement" true (bad "MODULE M; BEGIN 1 + 2 END M.");
  checkb "unclosed if" true (bad "MODULE M; BEGIN IF TRUE THEN END M.")

(* The pretty-printer as a tree transformation: parse ∘ pp must be the
   identity on the AST modulo positions (the textual-fixpoint test above
   would also pass for a printer that, say, reassociated operators). *)

let list_eq eq a b = List.length a = List.length b && List.for_all2 eq a b

let rec expr_eq (a : Ast.expr) (b : Ast.expr) =
  match (a.Ast.desc, b.Ast.desc) with
  | Int x, Int y -> x = y
  | Bool x, Bool y -> x = y
  | Text x, Text y -> x = y
  | Nil, Nil -> true
  | Var x, Var y -> x = y
  | Field (e1, f1), Field (e2, f2) -> f1 = f2 && expr_eq e1 e2
  | Index (b1, i1), Index (b2, i2) -> expr_eq b1 b2 && expr_eq i1 i2
  | Call (c1, a1), Call (c2, a2) -> callee_eq c1 c2 && list_eq expr_eq a1 a2
  | New c1, New c2 -> c1 = c2
  | Binop (o1, x1, y1), Binop (o2, x2, y2) ->
    o1 = o2 && expr_eq x1 x2 && expr_eq y1 y2
  | Unop (o1, x1), Unop (o2, x2) -> o1 = o2 && expr_eq x1 x2
  | Unchecked x, Unchecked y -> expr_eq x y
  | _ -> false

and callee_eq a b =
  match (a, b) with
  | Ast.Cproc p, Ast.Cproc q -> p = q
  | Ast.Cmethod (o1, m1), Ast.Cmethod (o2, m2) -> m1 = m2 && expr_eq o1 o2
  | _ -> false

let rec stmt_eq (a : Ast.stmt) (b : Ast.stmt) =
  match (a.Ast.sdesc, b.Ast.sdesc) with
  | Assign (d1, e1), Assign (d2, e2) -> expr_eq d1 d2 && expr_eq e1 e2
  | Call_stmt e1, Call_stmt e2 -> expr_eq e1 e2
  | If (b1, e1), If (b2, e2) ->
    list_eq
      (fun (c1, s1) (c2, s2) -> expr_eq c1 c2 && stmts_eq s1 s2)
      b1 b2
    && stmts_eq e1 e2
  | While (c1, s1), While (c2, s2) -> expr_eq c1 c2 && stmts_eq s1 s2
  | Repeat (s1, c1), Repeat (s2, c2) -> stmts_eq s1 s2 && expr_eq c1 c2
  | For (v1, a1, b1', s1), For (v2, a2, b2', s2) ->
    v1 = v2 && expr_eq a1 a2 && expr_eq b1' b2' && stmts_eq s1 s2
  | Return e1, Return e2 -> Option.equal expr_eq e1 e2
  | _ -> false

and stmts_eq a b = list_eq stmt_eq a b

let field_eq (a : Ast.field_decl) (b : Ast.field_decl) =
  a.Ast.fname = b.Ast.fname && a.Ast.fty = b.Ast.fty

let method_eq (a : Ast.method_decl) (b : Ast.method_decl) =
  a.Ast.mname = b.Ast.mname && a.Ast.mparams = b.Ast.mparams
  && a.Ast.mret = b.Ast.mret && a.Ast.mimpl = b.Ast.mimpl
  && a.Ast.mpragma = b.Ast.mpragma

let override_eq (a : Ast.override_decl) (b : Ast.override_decl) =
  a.Ast.oname = b.Ast.oname && a.Ast.oimpl = b.Ast.oimpl
  && a.Ast.opragma = b.Ast.opragma

let type_eq (a : Ast.type_decl) (b : Ast.type_decl) =
  a.Ast.tname = b.Ast.tname && a.Ast.super = b.Ast.super
  && list_eq field_eq a.Ast.fields b.Ast.fields
  && list_eq method_eq a.Ast.methods b.Ast.methods
  && list_eq override_eq a.Ast.overrides b.Ast.overrides

let local_eq (a : Ast.local_decl) (b : Ast.local_decl) =
  a.Ast.lname = b.Ast.lname && a.Ast.lty = b.Ast.lty
  && Option.equal expr_eq a.Ast.linit b.Ast.linit

let proc_eq (a : Ast.proc_decl) (b : Ast.proc_decl) =
  a.Ast.pname = b.Ast.pname && a.Ast.params = b.Ast.params
  && a.Ast.ret = b.Ast.ret
  && list_eq local_eq a.Ast.locals b.Ast.locals
  && stmts_eq a.Ast.body b.Ast.body
  && a.Ast.ppragma = b.Ast.ppragma

let global_eq (a : Ast.global_decl) (b : Ast.global_decl) =
  a.Ast.gname = b.Ast.gname && a.Ast.gty = b.Ast.gty
  && Option.equal expr_eq a.Ast.ginit b.Ast.ginit

let module_eq (a : Ast.module_) (b : Ast.module_) =
  a.Ast.modname = b.Ast.modname
  && list_eq type_eq a.Ast.types b.Ast.types
  && list_eq global_eq a.Ast.globals b.Ast.globals
  && list_eq proc_eq a.Ast.procs b.Ast.procs
  && stmts_eq a.Ast.main b.Ast.main

let test_roundtrip_ast_identity () =
  List.iter
    (fun (name, src) ->
      let m = parse_ok src in
      let m2 = parse_ok (Pretty.to_string m) in
      checkb
        (Fmt.str "sample %s: parse ∘ pp is the identity modulo positions"
           name)
        true (module_eq m m2))
    Samples.all

(* ------------------------------------------------------------------ *)
(* Type checker                                                        *)
(* ------------------------------------------------------------------ *)

let errors src =
  match Tc.check (parse_ok src) with
  | Ok _ -> []
  | Error es -> List.map (fun (e : Tc.error) -> e.msg) es

let has_error sub src =
  List.exists
    (fun msg ->
      let n = String.length sub and m = String.length msg in
      let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
      go 0)
    (errors src)

let test_tc_accepts_samples () =
  List.iter
    (fun (name, src) ->
      match Tc.check (parse_ok src) with
      | Ok _ -> ()
      | Error es ->
        Alcotest.failf "sample %s failed to check: %a" name
          Fmt.(list ~sep:semi Tc.pp_error)
          es)
    Samples.all

let test_tc_rejections () =
  checkb "unknown variable" true
    (has_error "unknown variable" "MODULE M; BEGIN x := 1 END M.");
  checkb "type mismatch" true
    (has_error "cannot assign"
       "MODULE M; VAR x : INTEGER; BEGIN x := TRUE END M.");
  checkb "unknown type" true
    (has_error "unknown type" "MODULE M; VAR x : Ghost; BEGIN END M.");
  checkb "bad condition" true
    (has_error "expected BOOLEAN"
       "MODULE M; BEGIN IF 1 THEN END END M.");
  checkb "unknown field" true
    (has_error "no field"
       "MODULE M; TYPE T = OBJECT x : INTEGER; END; VAR t : T; BEGIN t.y := \
        1 END M.");
  checkb "unknown method" true
    (has_error "no method"
       "MODULE M; TYPE T = OBJECT x : INTEGER; END; VAR t : T; BEGIN \
        t.m() END M.");
  checkb "cached must return" true
    (has_error "must return a value"
       "MODULE M; (*CACHED*) PROCEDURE P(n : INTEGER) = BEGIN END P; BEGIN \
        END M.");
  checkb "maintained on procedure" true
    (has_error "belongs on methods"
       "MODULE M; (*MAINTAINED*) PROCEDURE P(n : INTEGER) : INTEGER = BEGIN \
        RETURN n END P; BEGIN END M.");
  checkb "return mismatch" true
    (has_error "RETURN"
       "MODULE M; PROCEDURE P() : INTEGER = BEGIN RETURN TRUE END P; BEGIN \
        END M.");
  checkb "inheritance cycle" true
    (has_error "cycle"
       "MODULE M; TYPE A = B OBJECT END; TYPE B = A OBJECT END; BEGIN END \
        M.");
  checkb "nil arithmetic" true
    (has_error "expected INTEGER" "MODULE M; VAR x : INTEGER; BEGIN x := NIL \
                                   + 1 END M.")

(* A corpus of ill-typed programs: the checker must reject each AND
   anchor its first error at the expected line:col. *)
let test_tc_error_positions () =
  let first_error_pos what src =
    match Tc.check (parse_ok src) with
    | Ok _ -> Alcotest.failf "%s: expected a type error" what
    | Error [] -> Alcotest.failf "%s: empty error list" what
    | Error (e :: _) -> (e.Tc.epos.Ast.line, e.Tc.epos.Ast.col)
  in
  List.iter
    (fun (what, src, expected) ->
      Alcotest.(check (pair int int)) what expected (first_error_pos what src))
    [
      ( "unknown variable",
        "MODULE M;\nBEGIN\n  x := 1\nEND M.",
        (3, 3) );
      ( "boolean into integer",
        "MODULE M;\nVAR x : INTEGER;\nBEGIN\n  x := TRUE\nEND M.",
        (4, 3) );
      ( "unknown field",
        "MODULE M;\nTYPE T = OBJECT x : INTEGER; END;\nVAR t : T;\nBEGIN\n\
        \  t.ghost := 1\nEND M.",
        (5, 4) );
      ( "non-boolean condition",
        "MODULE M;\nBEGIN\n  IF 1 THEN END\nEND M.",
        (3, 6) );
      ( "cached proper procedure",
        "MODULE M;\n(*CACHED*) PROCEDURE P(n : INTEGER) =\nBEGIN\nEND P;\n\
         BEGIN END M.",
        (2, 22) );
      ( "return type mismatch",
        "MODULE M;\nPROCEDURE P() : INTEGER =\nBEGIN\n  RETURN TRUE\nEND P;\n\
         BEGIN END M.",
        (4, 3) );
      ( "method bound to unknown procedure",
        "MODULE M;\nTYPE T = OBJECT METHODS m() : INTEGER := Ghost; END;\n\
         BEGIN END M.",
        (2, 6) );
    ]

let test_tc_subtyping () =
  let src =
    "MODULE M; TYPE A = OBJECT x : INTEGER; END; TYPE B = A OBJECT y : \
     INTEGER; END; VAR a : A; VAR b : B; BEGIN b := NEW(B); a := b; a.x := \
     1; b.y := 2 END M."
  in
  checkb "subtype assignment accepted" true (errors src = []);
  checkb "supertype not assignable to subtype" true
    (has_error "cannot assign"
       "MODULE M; TYPE A = OBJECT END; TYPE B = A OBJECT END; VAR a : A; \
        VAR b : B; BEGIN a := NEW(A); b := a END M.")

let test_tc_method_impl_checks () =
  checkb "missing impl proc" true
    (has_error "unknown procedure"
       "MODULE M; TYPE T = OBJECT METHODS m() : INTEGER := Ghost; END; \
        BEGIN END M.");
  checkb "bad receiver" true
    (has_error "receiver"
       "MODULE M; TYPE T = OBJECT METHODS m() : INTEGER := P; END; \
        PROCEDURE P(n : INTEGER) : INTEGER = BEGIN RETURN n END P; BEGIN \
        END M.")

(* ------------------------------------------------------------------ *)
(* Conventional interpreter                                            *)
(* ------------------------------------------------------------------ *)

let test_interp_hello () =
  checks "print" "hello 42 TRUE\n"
    (run_ok
       {|MODULE M; BEGIN Print("hello ", 42, " ", TRUE, "\n") END M.|})

let test_interp_arith_and_control () =
  checks "loops and arithmetic" "1 2 6 24 120 \n10\n"
    (run_ok
       {|MODULE M;
         VAR f : INTEGER;
         VAR n : INTEGER;
         BEGIN
           f := 1;
           FOR i := 1 TO 5 DO f := f * i; Print(f, " ") END;
           Print("\n");
           n := 0;
           WHILE n * n < 100 DO n := n + 1 END;
           Print(n, "\n")
         END M.|})

let test_interp_objects () =
  checks "objects and dispatch" "area=12 area=9\n"
    (run_ok
       {|MODULE M;
         TYPE Shape = OBJECT
           w, h : INTEGER;
         METHODS
           area() : INTEGER := RectArea;
         END;
         TYPE Square = Shape OBJECT
         OVERRIDES
           area := SquareArea;
         END;
         VAR r : Shape;
         VAR s : Shape;
         PROCEDURE RectArea(x : Shape) : INTEGER =
         BEGIN RETURN x.w * x.h END RectArea;
         PROCEDURE SquareArea(x : Shape) : INTEGER =
         BEGIN RETURN x.w * x.w END SquareArea;
         BEGIN
           r := NEW(Shape); r.w := 3; r.h := 4;
           s := NEW(Square); s.w := 3; s.h := 0;
           Print("area=", r.area(), " area=", s.area(), "\n")
         END M.|})

let test_interp_runtime_errors () =
  let env =
    compile {|MODULE M; VAR x : INTEGER; BEGIN x := 1 DIV 0 END M.|}
  in
  let out = Interp.run env in
  checkb "division by zero reported" true
    (match out.Interp.error with
    | Some e -> String.length e > 0
    | None -> false);
  let env =
    compile
      {|MODULE M; TYPE T = OBJECT x : INTEGER; END; VAR t : T;
        BEGIN t.x := 1 END M.|}
  in
  let out = Interp.run env in
  checkb "nil dereference reported" true
    (match out.Interp.error with
    | Some e ->
      let sub = "NIL" in
      let n = String.length sub and m = String.length e in
      let rec go i = i + n <= m && (String.sub e i n = sub || go (i + 1)) in
      go 0
    | None -> false)

let test_interp_fuel () =
  let env = compile {|MODULE M; BEGIN WHILE TRUE DO END END M.|} in
  let out = Interp.run ~fuel:1000 env in
  checkb "fuel aborts" true (out.Interp.error <> None)

let test_interp_repeat () =
  checks "repeat/until" "1 2 4 8 16 32 64 128 \n"
    (run_ok
       {|MODULE M;
         VAR x : INTEGER;
         BEGIN
           x := 1;
           REPEAT
             Print(x, " ");
             x := x * 2
           UNTIL x > 128;
           Print("\n")
         END M.|});
  (* the body runs at least once *)
  checks "runs once" "hi\n"
    (run_ok
       {|MODULE M;
         BEGIN
           REPEAT Print("hi\n") UNTIL TRUE
         END M.|})

let test_interp_arrays () =
  checks "array basics" "1 4 9 16 25 \nsum=55\n"
    (run_ok
       {|MODULE M;
         VAR a : ARRAY [1..5] OF INTEGER;
         VAR b : ARRAY [1..10] OF INTEGER;
         VAR s : INTEGER;
         BEGIN
           FOR i := 1 TO 5 DO a[i] := i * i END;
           FOR i := 1 TO 5 DO Print(a[i], " ") END;
           Print("\n");
           FOR i := 1 TO 10 DO b[i] := i END;
           s := 0;
           FOR i := 1 TO 10 DO s := s + b[i] END;
           Print("sum=", s, "\n")
         END M.|});
  (* nested arrays and object elements *)
  checks "matrix" "6\n"
    (run_ok
       {|MODULE M;
         VAR m : ARRAY [0..2] OF ARRAY [0..2] OF INTEGER;
         BEGIN
           m[1][2] := 6;
           Print(m[1][2], "\n")
         END M.|})

let test_interp_array_bounds () =
  let env =
    compile
      {|MODULE M; VAR a : ARRAY [1..3] OF INTEGER; BEGIN a[4] := 1 END M.|}
  in
  let out = Interp.run env in
  checkb "bounds error reported" true
    (match out.Interp.error with
    | Some e ->
      let sub = "outside" in
      let n = String.length sub and m = String.length e in
      let rec go i = i + n <= m && (String.sub e i n = sub || go (i + 1)) in
      go 0
    | None -> false)

let test_tc_arrays () =
  checkb "array index must be int" true
    (has_error "expected INTEGER"
       "MODULE M; VAR a : ARRAY [1..3] OF INTEGER; BEGIN a[TRUE] := 1 END M.");
  checkb "whole-array assignment rejected" true
    (has_error "assigned"
       "MODULE M; VAR a, b : ARRAY [1..3] OF INTEGER; BEGIN a := b END M.");
  checkb "subscript on scalar rejected" true
    (has_error "non-array"
       "MODULE M; VAR x : INTEGER; BEGIN x[1] := 2 END M.");
  checkb "empty range rejected" true
    (match P.parse "MODULE M; VAR a : ARRAY [5..2] OF INTEGER; BEGIN END M." with
    | Error _ -> true
    | Ok _ -> false)

let test_interp_samples_run () =
  (* every sample must run to completion without error conventionally *)
  List.iter
    (fun (name, src) ->
      let env = compile src in
      let out = Interp.run ~fuel:10_000_000 env in
      match out.Interp.error with
      | None -> ()
      | Some e -> Alcotest.failf "sample %s: runtime error %s" name e)
    Samples.all

let test_interp_height_tree_output () =
  checks "height tree output" "height=11\nheight=21\nheight=11\n"
    (run_ok Samples.height_tree)

let test_interp_avl_output () =
  let out = run_ok ~fuel:100_000_000 Samples.avl in
  (* 30 balanced keys: height 5; 60: height 6 *)
  let expected_prefix = "height=5\n" in
  checkb "avl output starts with height=5" true
    (String.length out >= String.length expected_prefix
    && String.sub out 0 (String.length expected_prefix) = expected_prefix);
  checkb "sorted traversal present" true
    (let sub = "1 2 3 4 5 6 7 8 9 10 " in
     let n = String.length sub and m = String.length out in
     let rec go i = i + n <= m && (String.sub out i n = sub || go (i + 1)) in
     go 0)

let () =
  Alcotest.run "lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "pragmas" `Quick test_lexer_pragmas;
          Alcotest.test_case "nested comments" `Quick test_lexer_nested_comment;
          Alcotest.test_case "text escapes" `Quick test_lexer_text_escapes;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "samples parse" `Quick test_parse_samples;
          Alcotest.test_case "pretty roundtrip" `Quick test_roundtrip_samples;
          Alcotest.test_case "roundtrip is AST identity" `Quick
            test_roundtrip_ast_identity;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "accepts samples" `Quick test_tc_accepts_samples;
          Alcotest.test_case "rejections" `Quick test_tc_rejections;
          Alcotest.test_case "error positions" `Quick test_tc_error_positions;
          Alcotest.test_case "subtyping" `Quick test_tc_subtyping;
          Alcotest.test_case "method impls" `Quick test_tc_method_impl_checks;
          Alcotest.test_case "arrays" `Quick test_tc_arrays;
        ] );
      ( "interp",
        [
          Alcotest.test_case "hello" `Quick test_interp_hello;
          Alcotest.test_case "arithmetic and control" `Quick
            test_interp_arith_and_control;
          Alcotest.test_case "objects" `Quick test_interp_objects;
          Alcotest.test_case "runtime errors" `Quick test_interp_runtime_errors;
          Alcotest.test_case "fuel" `Quick test_interp_fuel;
          Alcotest.test_case "repeat" `Quick test_interp_repeat;
          Alcotest.test_case "arrays" `Quick test_interp_arrays;
          Alcotest.test_case "array bounds" `Quick test_interp_array_bounds;
          Alcotest.test_case "samples run" `Quick test_interp_samples_run;
          Alcotest.test_case "height tree output" `Quick
            test_interp_height_tree_output;
          Alcotest.test_case "avl output" `Quick test_interp_avl_output;
        ] );
    ]
