(* Tests for the Alphonse transformation: the §6.1 static analysis, the
   Algorithm 2 display form, and — the headline — Theorem 5.1: Alphonse
   execution of P produces the same output as conventional execution of P,
   checked for every sample program under every strategy/partitioning
   combination, with incrementality visible in the execution counters. *)

module P = Lang.Parser
module Tc = Lang.Typecheck
module Interp = Lang.Interp
module Engine = Alphonse.Engine
module Analysis = Transform.Analysis
module Incr = Transform.Incr_interp

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let compile src =
  match P.parse src with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok m -> (
    match Tc.check m with
    | Ok env -> env
    | Error es ->
      Alcotest.failf "typecheck failed: %a"
        Fmt.(list ~sep:semi Tc.pp_error)
        es)

let contains sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Theorem 5.1: output equivalence                                     *)
(* ------------------------------------------------------------------ *)

let fuel = 100_000_000

let test_theorem_5_1 () =
  List.iter
    (fun (name, src) ->
      let env = compile src in
      let conv = Interp.run ~fuel env in
      checkb (name ^ " conventional ok") true (conv.Interp.error = None);
      List.iter
        (fun (variant, strategy, partitioning) ->
          let inc =
            Incr.run ~fuel ~default_strategy:strategy ~partitioning env
          in
          (match inc.Incr.error with
          | Some e -> Alcotest.failf "%s (%s): %s" name variant e
          | None -> ());
          checks
            (Fmt.str "%s (%s) output equals conventional" name variant)
            conv.Interp.output inc.Incr.output)
        [
          ("demand", Engine.Demand, false);
          ("eager", Engine.Eager, false);
          ("demand+part", Engine.Demand, true);
          ("eager+part", Engine.Eager, true);
        ])
    Lang.Samples.all

(* ------------------------------------------------------------------ *)
(* Incrementality is observable                                        *)
(* ------------------------------------------------------------------ *)

let test_fib_cached_linear () =
  let env = compile Lang.Samples.fib_cached in
  let conv = Interp.run ~fuel env in
  let inc = Incr.run ~fuel env in
  checks "same output" conv.Interp.output inc.Incr.output;
  (* fib 20 then fib 21: conventional work is exponential in calls, the
     cached run is one execution per distinct argument *)
  checkb "cached run executes O(n) procedures" true
    (inc.Incr.engine_stats.Engine.executions <= 25);
  checkb "conventional interpreter works much harder" true
    (conv.Interp.steps > 10 * inc.Incr.steps)

let test_sums_maintained_counts () =
  let env = compile Lang.Samples.sums_maintained in
  let inc = Incr.run ~fuel env in
  checkb "no error" true (inc.Incr.error = None);
  (* three total() calls: first executes, second re-executes after the b
     change, third is a cache hit after the scratch write (scratch is
     tracked? no — scratch is never read by Total, so it is untracked) *)
  checki "exactly two executions" 2 inc.Incr.engine_stats.Engine.executions;
  checki "one cache hit" 1 inc.Incr.engine_stats.Engine.cache_hits

let test_unchecked_counts () =
  let env = compile Lang.Samples.unchecked_lookup in
  let inc = Incr.run ~fuel env in
  checkb "no error" true (inc.Incr.error = None);
  (* calls: initial execution; p2 write absorbed by UNCHECKED (hit);
     target write re-executes *)
  checki "two executions" 2 inc.Incr.engine_stats.Engine.executions;
  checki "one cache hit" 1 inc.Incr.engine_stats.Engine.cache_hits

let test_height_tree_incremental () =
  let env = compile Lang.Samples.height_tree in
  let inc = Incr.run ~fuel env in
  checkb "no error" true (inc.Incr.error = None);
  let conv = Interp.run ~fuel env in
  checks "same output" conv.Interp.output inc.Incr.output;
  (* the second height query after grafting the deep spine re-executes
     the new spine's instances plus the root, not the whole tree *)
  let execs = inc.Incr.engine_stats.Engine.executions in
  checkb (Fmt.str "executions %d bounded" execs) true (execs < 100)

(* ------------------------------------------------------------------ *)
(* Static analysis (§6.1)                                              *)
(* ------------------------------------------------------------------ *)

let test_analysis_tracked_sets () =
  let env = compile Lang.Samples.sums_maintained in
  let r = Analysis.analyze env in
  checkb "a tracked" true (Hashtbl.mem r.Analysis.tracked_globals "a");
  checkb "b tracked" true (Hashtbl.mem r.Analysis.tracked_globals "b");
  checkb "scratch untracked" false
    (Hashtbl.mem r.Analysis.tracked_globals "scratch");
  checkb "calc global untracked" false
    (Hashtbl.mem r.Analysis.tracked_globals "calc");
  checkb "Total is incremental" true
    (Hashtbl.mem r.Analysis.incremental_procs "Total")

let test_analysis_reachability () =
  let env = compile Lang.Samples.avl in
  let r = Analysis.analyze env in
  (* Fix, Diff, RotateLeft/Right are reachable from the maintained
     Balance; Insert and InOrder are mutator-only *)
  List.iter
    (fun p ->
      checkb (p ^ " reachable") true
        (Hashtbl.mem r.Analysis.reachable_procs p))
    [ "Balance"; "Fix"; "Diff"; "RotateLeft"; "RotateRight"; "Height" ];
  List.iter
    (fun p ->
      checkb (p ^ " not reachable") false
        (Hashtbl.mem r.Analysis.reachable_procs p))
    [ "Insert"; "InOrder" ];
  (* tree fields are tracked; the mutator-only global [root] is read by
     no incremental procedure *)
  checkb "left tracked" true (Hashtbl.mem r.Analysis.tracked_fields "left");
  checkb "key tracked? only mutator and Insert read key" false
    (Hashtbl.mem r.Analysis.tracked_fields "key");
  checkb "root untracked" false
    (Hashtbl.mem r.Analysis.tracked_globals "root")

let test_analysis_call_sites () =
  let env = compile Lang.Samples.fib_cached in
  let r = Analysis.analyze env in
  let s = r.Analysis.stats in
  (* the two recursive calls inside Fib and the two in the mutator *)
  checki "tracked calls" 4 s.Analysis.tracked_calls;
  checkb "untracked reads exist (locals)" true (s.Analysis.untracked_reads > 0)

(* Dynamic-dispatch resolution over an override chain A <- B <- C: a
   static receiver sees every implementation in its subtree, pragma-less
   overrides inherit the overridden method's pragma, and mi_pos is the
   METHODS/OVERRIDES entry that bound the implementation. *)
let test_dispatch_override_chain () =
  let env =
    compile
      {|MODULE M;
        VAR g : INTEGER;
        TYPE A = OBJECT
          x : INTEGER;
        METHODS
          v() : INTEGER := VA;
          plain() : INTEGER := PA;
        END;
        TYPE B = A OBJECT
        OVERRIDES
          (*MAINTAINED*) v := VB;
        END;
        TYPE C = B OBJECT
        OVERRIDES
          v := VC;
        END;
        VAR it : A;
        PROCEDURE VA(s : A) : INTEGER = BEGIN RETURN s.x END VA;
        PROCEDURE VB(s : A) : INTEGER = BEGIN RETURN s.x + g END VB;
        PROCEDURE VC(s : A) : INTEGER = BEGIN RETURN s.x * 2 END VC;
        PROCEDURE PA(s : A) : INTEGER = BEGIN RETURN 0 END PA;
        BEGIN
          it := NEW(C);
          it.x := 1;
          g := 2;
          Print(it.v(), " ", it.plain(), "\n")
        END M.|}
  in
  let impls cls m =
    Analysis.dispatch_targets env cls m
    |> List.map (fun (mi : Tc.method_info) -> mi.Tc.mi_impl)
    |> List.sort compare |> String.concat " "
  in
  checks "A.v sees the whole chain" "VA VB VC" (impls "A" "v");
  checks "B.v sees B and C" "VB VC" (impls "B" "v");
  checks "C.v sees only C" "VC" (impls "C" "v");
  checks "plain has one impl everywhere" "PA" (impls "C" "plain");
  (* pragma inheritance through the chain *)
  let mi_c = Option.get (Tc.lookup_method env "C" "v") in
  checkb "C.v inherits B's MAINTAINED" true (mi_c.Tc.mi_pragma <> None);
  checkb "C.v is bound at its OVERRIDES entry" true
    (mi_c.Tc.mi_pos.Lang.Ast.line = 15);
  let mi_a = Option.get (Tc.lookup_method env "A" "v") in
  checkb "A.v itself has no pragma" true (mi_a.Tc.mi_pragma = None);
  checkb "A.v is bound at its METHODS entry" true
    (mi_a.Tc.mi_pos.Lang.Ast.line = 6);
  (* a call through the static A receiver may reach incremental code *)
  checkb "A.v may be incremental" true
    (Analysis.method_may_be_incremental env "A" "v");
  checkb "C.v may be incremental" true
    (Analysis.method_may_be_incremental env "C" "v");
  checkb "plain never incremental" false
    (Analysis.method_may_be_incremental env "A" "plain")

let test_connectivity_components () =
  let src =
    {|MODULE M;
      TYPE A = OBJECT x : INTEGER; n : A; METHODS (*MAINTAINED*) f() : INTEGER := F; END;
      TYPE B = OBJECT y : INTEGER; n : B; METHODS (*MAINTAINED*) g() : INTEGER := G; END;
      VAR a : A;
      VAR b : B;
      PROCEDURE F(s : A) : INTEGER = BEGIN RETURN s.x END F;
      PROCEDURE G(s : B) : INTEGER = BEGIN RETURN s.y END G;
      BEGIN
        a := NEW(A); b := NEW(B);
        a.x := 1; b.y := 2;
        Print(a.f(), b.g(), "\n")
      END M.|}
  in
  let env = compile src in
  let r = Analysis.analyze env in
  let comps = Analysis.connectivity env r in
  let id_of name = List.assoc name comps in
  (* two disjoint type hierarchies land in distinct static partitions *)
  checkb "A and B separate" true (id_of "type:A" <> id_of "type:B");
  checkb "F with A" true (id_of "proc:F" = id_of "type:A");
  checkb "G with B" true (id_of "proc:G" = id_of "type:B")

let test_spreadsheet_incrementality () =
  (* Algorithm 10: after the initial evaluation, editing cell 1 must
     re-execute only the dependent expression instances *)
  let env = compile Lang.Samples.spreadsheet in
  let inc = Incr.run ~fuel env in
  checkb "no error" true (inc.Incr.error = None);
  let conv = Interp.run ~fuel env in
  checks "same output" conv.Interp.output inc.Incr.output;
  (* arrays are tracked in this program *)
  let r = Analysis.analyze env in
  checkb "array elements instrumented" true r.Analysis.arrays_tracked

let test_arrays_untracked_when_unused_incrementally () =
  let src =
    {|MODULE M;
      VAR a : ARRAY [1..4] OF INTEGER;
      VAR probe : P;
      VAR x : INTEGER;
      TYPE P = OBJECT METHODS (*MAINTAINED*) v() : INTEGER := V; END;
      PROCEDURE V(s : P) : INTEGER = BEGIN RETURN x END V;
      BEGIN
        probe := NEW(P);
        a[1] := 5;
        x := a[1];
        Print(probe.v(), "
")
      END M.|}
  in
  let env = compile src in
  let r = Analysis.analyze env in
  checkb "no incremental code touches arrays" false r.Analysis.arrays_tracked;
  let inc = Incr.run ~fuel env in
  let conv = Interp.run ~fuel env in
  checks "outputs agree" conv.Interp.output inc.Incr.output;
  (* the array element never got a graph node *)
  checkb "graph stays small" true
    (inc.Incr.graph_stats.Depgraph.Graph.live_nodes <= 2)

(* ------------------------------------------------------------------ *)
(* Algorithm 2: the transformed-source display                         *)
(* ------------------------------------------------------------------ *)

let test_marked_output () =
  let env = compile Lang.Samples.sums_maintained in
  let _r = Analysis.analyze env in
  let marked = Lang.Pretty.to_string ~marks:true env.Tc.m in
  checkb "reads of a become access" true (contains "access(a)" marked);
  checkb "writes of b become modify" true (contains "modify(b," marked);
  checkb "total() becomes call" true (contains "call(calc.total)" marked);
  checkb "untracked scratch stays plain" true
    (contains "scratch := 999" marked || contains "scratch :=" marked);
  checkb "scratch not modified-wrapped" false (contains "modify(scratch" marked);
  (* and the unmarked print still parses *)
  let plain = Lang.Pretty.to_string env.Tc.m in
  checkb "plain text has no access()" false (contains "access(" plain)

let () =
  Alcotest.run "transform"
    [
      ( "theorem-5.1",
        [ Alcotest.test_case "output equivalence" `Quick test_theorem_5_1 ] );
      ( "incrementality",
        [
          Alcotest.test_case "cached fib is linear" `Quick
            test_fib_cached_linear;
          Alcotest.test_case "maintained sums counts" `Quick
            test_sums_maintained_counts;
          Alcotest.test_case "unchecked counts" `Quick test_unchecked_counts;
          Alcotest.test_case "height tree incremental" `Quick
            test_height_tree_incremental;
          Alcotest.test_case "spreadsheet (Algorithm 10)" `Quick
            test_spreadsheet_incrementality;
          Alcotest.test_case "untracked arrays" `Quick
            test_arrays_untracked_when_unused_incrementally;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "tracked sets" `Quick test_analysis_tracked_sets;
          Alcotest.test_case "reachability" `Quick test_analysis_reachability;
          Alcotest.test_case "call sites" `Quick test_analysis_call_sites;
          Alcotest.test_case "dispatch over override chains" `Quick
            test_dispatch_override_chain;
          Alcotest.test_case "connectivity" `Quick
            test_connectivity_components;
        ] );
      ( "emission",
        [ Alcotest.test_case "marked output" `Quick test_marked_output ] );
    ]
