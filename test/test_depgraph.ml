(* Tests for the dependency-graph substrate: order-maintenance list,
   pairing heap, union-find, and the graph itself. *)

module Ol = Depgraph.Order_list
module Heap = Depgraph.Pairing_heap
module Uf = Depgraph.Union_find
module G = Depgraph.Graph

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Order-maintenance list                                              *)
(* ------------------------------------------------------------------ *)

let test_order_basic () =
  let t = Ol.create () in
  let b = Ol.base t in
  let x = Ol.insert_after b in
  let y = Ol.insert_after x in
  let z = Ol.insert_after b in
  (* order is now b, z, x, y *)
  checkb "b < z" true (Ol.lt b z);
  checkb "z < x" true (Ol.lt z x);
  checkb "x < y" true (Ol.lt x y);
  checkb "y > b" true (Ol.lt b y);
  checki "length" 4 (Ol.length t);
  Ol.validate t

let test_order_insert_before () =
  let t = Ol.create () in
  let b = Ol.base t in
  let x = Ol.insert_after b in
  let w = Ol.insert_before x in
  checkb "b < w" true (Ol.lt b w);
  checkb "w < x" true (Ol.lt w x);
  Alcotest.check_raises "insert_before base"
    (Invalid_argument "Order_list.insert_before: base item") (fun () ->
      ignore (Ol.insert_before b));
  Ol.validate t

let test_order_delete () =
  let t = Ol.create () in
  let b = Ol.base t in
  let x = Ol.insert_after b in
  let y = Ol.insert_after x in
  Ol.delete x;
  checkb "b < y" true (Ol.lt b y);
  checki "length" 2 (Ol.length t);
  (* [lt]/[leq] are deliberately unchecked (settle-path fast path); the
     checked comparison is [compare] *)
  Alcotest.check_raises "compare deleted"
    (Invalid_argument "Order_list.compare: deleted order item") (fun () ->
      ignore (Ol.compare x y));
  Ol.validate t

(* Append-heavy and front-heavy insertion both must terminate and preserve
   order through relabeling. *)
let test_order_stress_front () =
  let t = Ol.create () in
  let b = Ol.base t in
  let items = Array.make 5000 b in
  (* Always insert directly after base: the new element lands before all
     previously inserted ones, continually squeezing the front gap. *)
  for i = 0 to 4999 do
    items.(i) <- Ol.insert_after b
  done;
  Ol.validate t;
  (* items.(i) was inserted later, so it sits closer to base *)
  for i = 1 to 4999 do
    checkb "later insert sorts earlier" true (Ol.lt items.(i) items.(i - 1))
  done;
  checkb "relabeling happened" true (Ol.relabel_count t > 0)

let test_order_random_matches_reference () =
  let rand = Random.State.make [| 42 |] in
  let t = Ol.create () in
  (* reference: a list of item ids in order; items array *)
  let items = ref [ Ol.base t ] in
  for _ = 1 to 2000 do
    let n = List.length !items in
    let i = Random.State.int rand n in
    let anchor = List.nth !items i in
    let fresh = Ol.insert_after anchor in
    (* splice into reference after position i *)
    let rec splice k = function
      | [] -> [ fresh ]
      | x :: rest -> if k = 0 then x :: fresh :: rest else x :: splice (k - 1) rest
    in
    items := splice i !items
  done;
  Ol.validate t;
  let arr = Array.of_list !items in
  for k = 0 to Array.length arr - 2 do
    checkb "reference order agrees" true (Ol.lt arr.(k) arr.(k + 1))
  done

(* ------------------------------------------------------------------ *)
(* Pairing heap                                                        *)
(* ------------------------------------------------------------------ *)

let int_heap () = Heap.create ~leq:(fun (a : int) b -> a <= b)

let drain h =
  let rec go acc =
    match Heap.pop_min h with None -> List.rev acc | Some x -> go (x :: acc)
  in
  go []

let test_heap_sorts () =
  let h = int_heap () in
  List.iter (Heap.insert h) [ 5; 3; 8; 1; 9; 2; 2; 7 ];
  checki "length" 8 (Heap.length h);
  check Alcotest.(list int) "sorted drain" [ 1; 2; 2; 3; 5; 7; 8; 9 ] (drain h);
  checkb "empty after drain" true (Heap.is_empty h)

let test_heap_meld () =
  let a = int_heap () and b = int_heap () in
  List.iter (Heap.insert a) [ 4; 1; 6 ];
  List.iter (Heap.insert b) [ 5; 0; 2 ];
  Heap.meld a b;
  checkb "src emptied" true (Heap.is_empty b);
  check Alcotest.(list int) "melded drain" [ 0; 1; 2; 4; 5; 6 ] (drain a)

let test_heap_peek_clear () =
  let h = int_heap () in
  check Alcotest.(option int) "peek empty" None (Heap.peek_min h);
  Heap.insert h 3;
  Heap.insert h 1;
  check Alcotest.(option int) "peek" (Some 1) (Heap.peek_min h);
  checki "peek does not pop" 2 (Heap.length h);
  Heap.clear h;
  checkb "cleared" true (Heap.is_empty h)

let prop_heap_sorts_random =
  QCheck.Test.make ~name:"pairing heap drains sorted"
    QCheck.(list int)
    (fun xs ->
      let h = int_heap () in
      List.iter (Heap.insert h) xs;
      drain h = List.sort compare xs)

let prop_heap_meld_random =
  QCheck.Test.make ~name:"meld equals concatenation"
    QCheck.(pair (list small_int) (list small_int))
    (fun (xs, ys) ->
      let a = int_heap () and b = int_heap () in
      List.iter (Heap.insert a) xs;
      List.iter (Heap.insert b) ys;
      Heap.meld a b;
      drain a = List.sort compare (xs @ ys))

(* ------------------------------------------------------------------ *)
(* Union-find                                                          *)
(* ------------------------------------------------------------------ *)

let test_uf_basic () =
  let a = Uf.make 1 and b = Uf.make 2 and c = Uf.make 4 in
  checkb "distinct" false (Uf.same a b);
  let ( + ) = Stdlib.( + ) in
  ignore (Uf.union ~merge:( + ) a b);
  checkb "unioned" true (Uf.same a b);
  checki "merged payload" 3 (Uf.payload a);
  checki "payload via either" 3 (Uf.payload b);
  ignore (Uf.union ~merge:( + ) b c);
  checki "payload all" 7 (Uf.payload c);
  checkb "transitive" true (Uf.same a c);
  (* idempotent union *)
  ignore (Uf.union ~merge:( + ) a c);
  checki "no double merge" 7 (Uf.payload a)

let test_uf_set_payload () =
  let a = Uf.make "x" and b = Uf.make "y" in
  ignore (Uf.union ~merge:(fun k _ -> k) a b);
  Uf.set_payload b "z";
  check Alcotest.string "set via non-root" "z" (Uf.payload a)

let prop_uf_partition_refinement =
  (* random unions on 40 elements agree with a naive partition oracle *)
  QCheck.Test.make ~name:"union-find agrees with naive partition"
    QCheck.(list (pair (int_bound 39) (int_bound 39)))
    (fun pairs ->
      let elts = Array.init 40 (fun i -> Uf.make i) in
      let naive = Array.init 40 (fun i -> i) in
      let rec naive_find i = if naive.(i) = i then i else naive_find naive.(i) in
      List.iter
        (fun (i, j) ->
          ignore (Uf.union ~merge:min elts.(i) elts.(j));
          let ri = naive_find i and rj = naive_find j in
          if ri <> rj then naive.(ri) <- rj)
        pairs;
      let ok = ref true in
      for i = 0 to 39 do
        for j = 0 to 39 do
          let same_uf = Uf.same elts.(i) elts.(j) in
          let same_naive = naive_find i = naive_find j in
          if same_uf <> same_naive then ok := false
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Dependency graph                                                    *)
(* ------------------------------------------------------------------ *)

let test_graph_edges () =
  let g = G.create () in
  let a = G.add_node g ~order_after:None "a" in
  let b = G.add_node g ~order_after:None "b" in
  let c = G.add_node g ~order_after:None "c" in
  G.add_edge ~stamp:1 ~src:a ~dst:c;
  G.add_edge ~stamp:1 ~src:b ~dst:c;
  G.add_edge ~stamp:2 ~src:a ~dst:b;
  checki "succ a" 2 (G.succ_count a);
  checki "pred c" 2 (G.pred_count c);
  let seen = ref [] in
  G.iter_succ (fun n -> seen := G.payload n :: !seen) a;
  check
    Alcotest.(slist string compare)
    "a's successors" [ "b"; "c" ] !seen;
  G.clear_preds g c;
  checki "pred c cleared" 0 (G.pred_count c);
  checki "succ a after clear" 1 (G.succ_count a);
  checki "succ b after clear" 0 (G.succ_count b);
  G.validate g

let test_graph_edge_dedup () =
  let g = G.create () in
  let a = G.add_node g ~order_after:None "a" in
  let b = G.add_node g ~order_after:None "b" in
  G.add_edge ~stamp:7 ~src:a ~dst:b;
  G.add_edge ~stamp:7 ~src:a ~dst:b;
  G.add_edge ~stamp:7 ~src:a ~dst:b;
  checki "deduplicated" 1 (G.succ_count a);
  (* a different execution stamp records a fresh edge *)
  G.add_edge ~stamp:8 ~src:a ~dst:b;
  checki "new stamp, new edge" 2 (G.succ_count a)

let test_graph_order () =
  let g = G.create () in
  let a = G.add_node g ~order_after:None "a" in
  let b = G.add_node g ~order_after:None "b" in
  let c = G.add_node_before g ~order_before:b "c" in
  checkb "a before c" true (G.order_lt a c);
  checkb "c before b" true (G.order_lt c b);
  G.reorder_before b a;
  checkb "b moved before a" true (G.order_lt b a)

let test_graph_remove_node () =
  let g = G.create () in
  let a = G.add_node g ~order_after:None "a" in
  let b = G.add_node g ~order_after:None "b" in
  let c = G.add_node g ~order_after:None "c" in
  G.add_edge ~stamp:1 ~src:a ~dst:b;
  G.add_edge ~stamp:2 ~src:b ~dst:c;
  G.remove_node g b;
  checki "a succ" 0 (G.succ_count a);
  checki "c pred" 0 (G.pred_count c);
  Alcotest.check_raises "use after remove"
    (Invalid_argument "Graph.iter_succ: removed dependency graph node")
    (fun () -> G.iter_succ ignore b);
  let s = G.stats g in
  checki "live nodes" 2 s.live_nodes;
  checki "live edges" 0 s.live_edges;
  checki "total nodes" 3 s.total_nodes;
  checki "removed edges" 2 s.removed_edges

let test_graph_stats () =
  let g = G.create () in
  let a = G.add_node g ~order_after:None "a" in
  let b = G.add_node g ~order_after:None "b" in
  G.add_edge ~stamp:1 ~src:a ~dst:b;
  let s = G.stats g in
  checki "live nodes" 2 s.live_nodes;
  checki "live edges" 1 s.live_edges;
  checki "total edges" 1 s.total_edges

(* Swap-remove must preserve the identity of the surviving edges: when
   clearing c's predecessors vacates a's middle successor entry, the last
   entry (a→d) moves into the hole and its twin backpointer — held in d's
   pred arrays — must be repointed. A stale twin would corrupt the next
   detach through d. *)
let test_arena_swap_remove_identity () =
  let g = G.create () in
  let a = G.add_node g ~order_after:None "a" in
  let b = G.add_node g ~order_after:None "b" in
  let c = G.add_node g ~order_after:None "c" in
  let d = G.add_node g ~order_after:None "d" in
  G.add_edge ~stamp:1 ~src:a ~dst:b;
  G.add_edge ~stamp:2 ~src:a ~dst:c;
  G.add_edge ~stamp:3 ~src:a ~dst:d;
  (* vacates a's entry #1; the a→d entry swaps down into it *)
  G.clear_preds g c;
  let succ = ref [] in
  G.iter_succ (fun n -> succ := G.payload n :: !succ) a;
  check
    Alcotest.(slist string compare)
    "a→c removed, a→b and a→d survive" [ "b"; "d" ] !succ;
  (* detaching through the moved edge's twin exercises the repointing:
     d's pred entry must name a's *new* succ position *)
  G.clear_preds g d;
  let succ = ref [] in
  G.iter_succ (fun n -> succ := G.payload n :: !succ) a;
  check Alcotest.(slist string compare) "only a→b remains" [ "b" ] !succ;
  checki "b's preds intact" 1 (G.pred_count b);
  G.validate g

(* One slot recycled past the generation-word limit: the word wraps
   (mod [gen_limit]) back to a previously-issued value, and liveness
   must still be exact — it comes from the handle's dead flag, never
   from generation equality. *)
let test_arena_generation_rollover () =
  let g = G.create () in
  let first = G.add_node g ~order_after:None 0 in
  let slot0 = G.slot first in
  checki "first generation" 0 (G.generation first);
  G.remove_node g first;
  let last = ref first in
  (* [gen_limit - 1] further recyclings leave the slot's word at
     [gen_limit mod gen_limit = 0] for the next allocation *)
  for i = 1 to G.gen_limit - 1 do
    let n = G.add_node g ~order_after:None i in
    checki "slot is recycled" slot0 (G.slot n);
    checki "generation word wraps" (i mod G.gen_limit) (G.generation n);
    last := n;
    G.remove_node g n
  done;
  (* after the wrap, a fresh node carries the same generation word the
     original handle was allocated under … *)
  let alias = G.add_node g ~order_after:None (-1) in
  checki "wrapped back to the first word"
    (G.generation first) (G.generation alias);
  (* … yet both dead handles are still exactly dead *)
  Alcotest.check_raises "pre-wrap handle stays dead"
    (Invalid_argument "Graph.iter_succ: removed dependency graph node")
    (fun () -> G.iter_succ ignore first);
  Alcotest.check_raises "post-wrap handle stays dead"
    (Invalid_argument "Graph.iter_succ: removed dependency graph node")
    (fun () -> G.iter_succ ignore !last);
  let s = G.stats g in
  checki "one live node" 1 s.live_nodes;
  checki "all allocations counted" (G.gen_limit + 1) s.total_nodes;
  G.validate g

(* clear_preds_collect is clear_preds fused with a snapshot of the
   sources (the engine's re-execution prologue); the snapshot must list
   every detached source exactly once. *)
let test_arena_clear_preds_collect () =
  let g = G.create () in
  let a = G.add_node g ~order_after:None "a" in
  let b = G.add_node g ~order_after:None "b" in
  let c = G.add_node g ~order_after:None "c" in
  G.add_edge ~stamp:1 ~src:a ~dst:c;
  G.add_edge ~stamp:2 ~src:b ~dst:c;
  let sources = G.clear_preds_collect g c |> List.map G.payload in
  check
    Alcotest.(slist string compare)
    "collected sources" [ "a"; "b" ] sources;
  checki "preds cleared" 0 (G.pred_count c);
  checki "a detached" 0 (G.succ_count a);
  check Alcotest.(list string) "empty collect" []
    (G.clear_preds_collect g c |> List.map G.payload);
  G.validate g

(* ------------------------------------------------------------------ *)
(* Flat heap (the settle queues)                                       *)
(* ------------------------------------------------------------------ *)

module Fh = Depgraph.Flat_heap

let test_flat_heap_sorts () =
  let h = Fh.create ~leq:(fun (a : int) b -> a <= b) in
  List.iter (Fh.insert h) [ 5; 1; 4; 1; 3; 9; 2 ];
  checkb "not empty" false (Fh.is_empty h);
  let rec drain acc =
    match Fh.pop_min h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  check Alcotest.(list int) "drains sorted" [ 1; 1; 2; 3; 4; 5; 9 ] (drain []);
  checkb "empty after drain" true (Fh.is_empty h)

let test_flat_heap_meld () =
  let leq (a : int) b = a <= b in
  let h1 = Fh.create ~leq and h2 = Fh.create ~leq in
  List.iter (Fh.insert h1) [ 7; 3 ];
  List.iter (Fh.insert h2) [ 5; 1; 6 ];
  Fh.meld h1 h2;
  checkb "absorbed heap is empty" true (Fh.is_empty h2);
  let rec drain acc =
    match Fh.pop_min h1 with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  check Alcotest.(list int) "meld = union" [ 1; 3; 5; 6; 7 ] (drain [])

let prop_flat_heap_sorts_random =
  QCheck.Test.make ~name:"flat heap drains sorted" QCheck.(list small_int)
    (fun xs ->
      let h = Fh.create ~leq:(fun (a : int) b -> a <= b) in
      List.iter (Fh.insert h) xs;
      let rec drain acc =
        match Fh.pop_min h with
        | None -> List.rev acc
        | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

(* Random add/clear sequence against a naive adjacency oracle. *)
let prop_graph_matches_oracle =
  QCheck.Test.make ~name:"graph agrees with naive adjacency oracle"
    QCheck.(list (pair (int_bound 9) (int_bound 9)))
    (fun ops ->
      let g = G.create () in
      let nodes = Array.init 10 (fun i -> G.add_node g ~order_after:None i) in
      let oracle = Array.make_matrix 10 10 false in
      let stamp = ref 0 in
      List.iteri
        (fun k (i, j) ->
          if k mod 7 = 3 then begin
            (* occasionally clear predecessors of j *)
            G.clear_preds g nodes.(j);
            for s = 0 to 9 do
              oracle.(s).(j) <- false
            done
          end
          else if i <> j then begin
            incr stamp;
            G.add_edge ~stamp:!stamp ~src:nodes.(i) ~dst:nodes.(j);
            oracle.(i).(j) <- true
          end)
        ops;
      let ok = ref true in
      for i = 0 to 9 do
        let succ = ref [] in
        G.iter_succ (fun n -> succ := G.payload n :: !succ) nodes.(i);
        let expected = ref [] in
        for j = 9 downto 0 do
          if oracle.(i).(j) then expected := j :: !expected
        done;
        (* the graph may hold parallel edges from distinct stamps; compare
           as sets *)
        let sort = List.sort_uniq compare in
        if sort !succ <> sort !expected then ok := false
      done;
      !ok)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "depgraph"
    [
      ( "order_list",
        [
          Alcotest.test_case "basic ordering" `Quick test_order_basic;
          Alcotest.test_case "insert_before" `Quick test_order_insert_before;
          Alcotest.test_case "delete" `Quick test_order_delete;
          Alcotest.test_case "front-insert stress" `Quick test_order_stress_front;
          Alcotest.test_case "random vs reference" `Quick
            test_order_random_matches_reference;
        ] );
      ( "pairing_heap",
        Alcotest.test_case "sorts" `Quick test_heap_sorts
        :: Alcotest.test_case "meld" `Quick test_heap_meld
        :: Alcotest.test_case "peek/clear" `Quick test_heap_peek_clear
        :: qsuite [ prop_heap_sorts_random; prop_heap_meld_random ] );
      ( "union_find",
        Alcotest.test_case "basic" `Quick test_uf_basic
        :: Alcotest.test_case "set_payload" `Quick test_uf_set_payload
        :: qsuite [ prop_uf_partition_refinement ] );
      ( "flat_heap",
        Alcotest.test_case "sorts" `Quick test_flat_heap_sorts
        :: Alcotest.test_case "meld" `Quick test_flat_heap_meld
        :: qsuite [ prop_flat_heap_sorts_random ] );
      ( "graph",
        Alcotest.test_case "edges" `Quick test_graph_edges
        :: Alcotest.test_case "edge dedup" `Quick test_graph_edge_dedup
        :: Alcotest.test_case "order" `Quick test_graph_order
        :: Alcotest.test_case "remove node" `Quick test_graph_remove_node
        :: Alcotest.test_case "stats" `Quick test_graph_stats
        :: Alcotest.test_case "swap-remove edge identity" `Quick
             test_arena_swap_remove_identity
        :: Alcotest.test_case "generation-word rollover" `Quick
             test_arena_generation_rollover
        :: Alcotest.test_case "clear_preds_collect snapshot" `Quick
             test_arena_clear_preds_collect
        :: qsuite [ prop_graph_matches_oracle ] );
    ]
