Documentation integrity: every relative link and `Module.ident` code
reference in README.md/docs/*.md must resolve into the repo, and every
CLI flag the docs mention must exist in `alphonsec --help`.

  $ check_docs() { ../tools/check_docs.exe "$@"; }

The repo's own docs must be clean:

  $ check_docs --root ..
  docs OK

Collect the full help corpus and verify no documented flag has drifted
from the CLI:

  $ for c in analyze call check compare daemon graph lint metrics print profile \
  >          recover run samples serve sheet transform; do
  >   ../bin/alphonsec.exe $c --help=plain
  > done > help.txt 2>&1
  $ check_docs --root .. --help-text help.txt
  docs OK

The checker must have teeth. A seeded broken link fails:

  $ mkdir -p seeded/lib/alphonse
  $ printf 'val settle : int -> unit\n' > seeded/lib/alphonse/engine.mli
  $ printf 'see [gone](no-such-file.md)\n' > seeded/README.md
  $ check_docs --root seeded
  README.md: broken link: no-such-file.md
  [1]

A code reference to an ident its module does not define fails, while a
real one passes:

  $ printf '`Engine.settle` yes, `Engine.frobnicate` no\n' > seeded/README.md
  $ check_docs --root seeded
  README.md: code reference `Engine.frobnicate`: `frobnicate` not found in the sources of its module
  [1]

A reference to a module that does not exist in a real namespace fails:

  $ printf 'read `Alphonse.Nonexistent` please\n' > seeded/README.md
  $ check_docs --root seeded
  README.md: code reference `Alphonse.Nonexistent`: no module Nonexistent in seeded/lib/alphonse
  [1]

A documented flag absent from the help corpus fails:

  $ printf 'pass `--frobnicate` to enable\n' > seeded/README.md
  $ check_docs --root seeded --help-text help.txt
  documented flag --frobnicate does not appear in `alphonsec --help` output
  [1]

Bench-marker figures are cross-checked against BENCH_results.json. A
quote near the measured value passes, one that drifted past the 2x
band fails, a marker whose row vanished from the bench fails, and a
missing results file is silently skipped (results are regenerated per
run, never committed):

  $ cat > bench.json <<'EOF'
  > {"schema":"alphonse-bench/1","experiments":[{"name":"E4","wall_clock_s":1,
  > "tables":[{"title":"t","claim":"c","headers":["metric","value"],
  > "rows":[["alphonse time","20.0ms"]]}]}]}
  > EOF

  $ printf 'took 21.0ms <!-- bench:E4:row=alphonse time:col=value -->\n' > seeded/README.md
  $ check_docs --root seeded --bench bench.json
  docs OK

  $ printf 'took 136.2ms <!-- bench:E4:row=alphonse time:col=value -->\n' > seeded/README.md
  $ check_docs --root seeded --bench bench.json
  README.md: stale bench figure for E4/"alphonse time"/"value": doc quotes a value 6.81x the measured 20.0ms
  [1]

  $ printf 'took 1.0ms <!-- bench:E4:row=gone:col=value -->\n' > seeded/README.md
  $ check_docs --root seeded --bench bench.json
  README.md: bench marker: experiment E4 has no row "gone" with column "value"
  [1]

  $ check_docs --root seeded --bench no-such-results.json
  docs OK
