(* The daemon: protocol, budgets, admission control, per-tenant
   supervision, drain — plus the hardened Serve accept path. *)

module Engine = Alphonse.Engine
module Var = Alphonse.Var
module Json = Alphonse.Json
module Durable = Alphonse.Durable
module Tenant = Alphonse.Tenant
module Daemon = Alphonse.Daemon
module Faults = Alphonse.Faults
module Serve = Alphonse.Serve
module Sheet = Spreadsheet.Sheet

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let fresh_root name =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "alphonse-daemon-%s-%d" name (Unix.getpid ()))
  in
  rm_rf dir;
  dir

(* ------------------------------------------------------------------ *)
(* Request/response helpers                                            *)
(* ------------------------------------------------------------------ *)

let status resp =
  match Option.bind (Json.member "status" resp) Json.to_float with
  | Some f -> int_of_float f
  | None -> Alcotest.failf "response without status: %s" (Json.to_string resp)

let results resp =
  match Option.bind (Json.member "results" resp) Json.to_list with
  | Some l -> l
  | None -> Alcotest.failf "response without results: %s" (Json.to_string resp)

let has_retry_after resp = Json.member "retry_after_ms" resp <> None

let request ?deadline_ms ?max_steps ~tenant ops =
  let extra =
    (match deadline_ms with
    | Some ms -> [ ("deadline_ms", Json.Num ms) ]
    | None -> [])
    @
    match max_steps with
    | Some n -> [ ("max_steps", Json.Num (float_of_int n)) ]
    | None -> []
  in
  Json.Obj
    ([ ("id", Json.Num 1.); ("tenant", Json.Str tenant) ]
    @ extra
    @ [ ("ops", Json.Arr ops) ])

let set_op cell v =
  Json.Obj [ ("op", Json.Str "set"); ("cell", Json.Str cell); ("v", Json.Str v) ]

let get_op cell = Json.Obj [ ("op", Json.Str "get"); ("cell", Json.Str cell) ]
let render_op = Json.Obj [ ("op", Json.Str "render") ]

(* numeric value of a sheet "get" result *)
let got_num r =
  match Option.bind (Json.member "value" r) Json.to_float with
  | Some f -> f
  | None -> Alcotest.failf "get result without value: %s" (Json.to_string r)

let sheet_get d ~tenant cell =
  let resp = Daemon.submit d (request ~tenant [ get_op cell ]) in
  checki ("get " ^ cell ^ " status") 200 (status resp);
  got_num (List.hd (results resp))

let sheet_render d ~tenant =
  let resp = Daemon.submit d (request ~tenant [ render_op ]) in
  checki "render status" 200 (status resp);
  match Option.bind (Json.member "render" (List.hd (results resp))) Json.to_str with
  | Some s -> s
  | None -> Alcotest.fail "render result without render"

(* Retry a submit until the tenant comes back from a restart. *)
let await_recovery ?(timeout = 10.0) d ~tenant cell =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    let resp = Daemon.submit d (request ~tenant [ get_op cell ]) in
    match status resp with
    | 200 -> got_num (List.hd (results resp))
    | 503 when Unix.gettimeofday () -. t0 < timeout ->
      Thread.delay 0.02;
      go ()
    | s -> Alcotest.failf "tenant did not recover (last status %d)" s
  in
  go ()

(* ------------------------------------------------------------------ *)
(* A toy workload with controllable behavior                           *)
(* ------------------------------------------------------------------ *)

(* One tracked int cell. Ops: put/get/slow/boom — slow holds the tenant
   lock (shedding tests), boom crashes the session (supervision
   tests). *)
let toy () : Tenant.workload =
  {
    Tenant.w_make =
      (fun () ->
        let eng = Engine.create ~default_strategy:Engine.Eager () in
        let v = Var.create eng ~name:"v" 0 in
        let apply op =
          match Option.bind (Json.member "op" op) Json.to_str with
          | Some "put" -> (
            match Option.bind (Json.member "v" op) Json.to_float with
            | Some f ->
              Var.set v (int_of_float f);
              Json.Obj [ ("ok", Json.Bool true) ]
            | None -> raise (Tenant.Bad_op "put needs a numeric v"))
          | Some "get" -> Json.Obj [ ("v", Json.Num (float_of_int (Var.get v))) ]
          | Some "slow" ->
            Thread.delay 0.4;
            Json.Obj [ ("ok", Json.Bool true) ]
          | Some "boom" -> failwith "boom"
          | _ -> raise (Tenant.Bad_op "unknown toy op")
        in
        {
          Tenant.s_engine = eng;
          s_apply = apply;
          s_persist =
            {
              Durable.p_save = (fun () -> Json.Num (float_of_int (Var.get v)));
              p_load =
                (fun j ->
                  match Json.to_float j with
                  | Some f -> Var.set v (int_of_float f)
                  | None -> ());
              p_apply = (fun _ -> ());
            };
          s_set_journal = (fun _ -> ());
        });
  }

let toy_op name = Json.Obj [ ("op", Json.Str name) ]

let put_op n =
  Json.Obj [ ("op", Json.Str "put"); ("v", Json.Num (float_of_int n)) ]

let mem_config root =
  { (Daemon.default_config ~root ()) with Daemon.d_durable = false }

(* ------------------------------------------------------------------ *)
(* Protocol (in-process)                                               *)
(* ------------------------------------------------------------------ *)

let test_ping_and_batch () =
  let d = Daemon.create (mem_config (fresh_root "ping")) (Sheet.workload ()) in
  let pong = Daemon.submit d (Json.Obj [ ("op", Json.Str "ping") ]) in
  checki "ping status" 200 (status pong);
  checkb "pong" true (Json.member "pong" pong = Some (Json.Bool true));
  let resp =
    Daemon.submit d
      (request ~tenant:"acme" [ set_op "A1" "4"; set_op "A2" "=A1*A1"; get_op "A2" ])
  in
  checki "batch status" 200 (status resp);
  checki "three results" 3 (List.length (results resp));
  checkb "id echoed" true (Json.member "id" resp = Some (Json.Num 1.));
  Alcotest.(check (float 0.0)) "A2 = 16" 16.0 (got_num (List.nth (results resp) 2));
  checkb "tenant listed" true (List.mem "acme" (Daemon.tenant_ids d));
  checki "served counted" 2 (Daemon.served d);
  Daemon.drain d

let test_protocol_errors () =
  let d = Daemon.create (mem_config (fresh_root "errors")) (Sheet.workload ()) in
  checki "missing tenant" 400
    (status (Daemon.submit d (Json.Obj [ ("ops", Json.Arr []) ])));
  checki "invalid tenant id" 400
    (status (Daemon.submit d (request ~tenant:"../escape" [])));
  checki "unknown daemon op" 400
    (status (Daemon.submit d (Json.Obj [ ("op", Json.Str "reboot") ])));
  (* a malformed op rejects the whole batch and rolls it back *)
  let resp =
    Daemon.submit d
      (request ~tenant:"t" [ set_op "A1" "7"; Json.Obj [ ("op", Json.Str "??") ] ])
  in
  checki "bad op is a 400" 400 (status resp);
  let resp = Daemon.submit d (request ~tenant:"t" [ get_op "A1" ]) in
  checki "tenant survives a bad op" 200 (status resp);
  checkb "rejected batch rolled back" true
    (Json.member "value" (List.hd (results resp)) = Some Json.Null);
  Daemon.drain d

let test_draining_503 () =
  let d = Daemon.create (mem_config (fresh_root "drain503")) (Sheet.workload ()) in
  Daemon.drain d;
  let resp = Daemon.submit d (request ~tenant:"t" [ get_op "A1" ]) in
  checki "draining sheds" 503 (status resp);
  checkb "draining quotes retry" true (has_retry_after resp)

(* ------------------------------------------------------------------ *)
(* Budgets through the daemon                                          *)
(* ------------------------------------------------------------------ *)

let test_budget_408_rolls_back () =
  let d = Daemon.create (mem_config (fresh_root "budget")) (Sheet.workload ()) in
  let resp =
    Daemon.submit d
      (request ~tenant:"t"
         (* the render forces every formula, so the next batch has real
            propagation work for the step budget to interrupt *)
         [ set_op "A1" "4"; set_op "A2" "=A1+1"; set_op "A3" "=A2+A1"; render_op ])
  in
  checki "seed batch" 200 (status resp);
  (* one settle step cannot finish this batch: cancelled + rolled back *)
  let resp =
    Daemon.submit d
      (request ~tenant:"t" ~max_steps:1 [ set_op "A1" "9"; set_op "A4" "=A3*A1" ])
  in
  checki "budget trip is a 408" 408 (status resp);
  Alcotest.(check (float 0.0)) "A1 rolled back" 4.0 (sheet_get d ~tenant:"t" "A1");
  checkb "A4 rolled back" true
    (let r = Daemon.submit d (request ~tenant:"t" [ get_op "A4" ]) in
     Json.member "value" (List.hd (results r)) = Some Json.Null);
  (* the tenant is healthy, not crashed: the same batch replays clean *)
  let resp =
    Daemon.submit d (request ~tenant:"t" [ set_op "A1" "9"; set_op "A4" "=A3*A1" ])
  in
  checki "replay commits" 200 (status resp);
  Alcotest.(check (float 0.0)) "A4 = A3*A1 = 171" 171.0
    (sheet_get d ~tenant:"t" "A4");
  (match Daemon.find_tenant d "t" with
  | Some t -> checki "no crash charged" 0 (Tenant.crashes t)
  | None -> Alcotest.fail "tenant missing");
  Daemon.drain d

let test_deadline_in_queue () =
  let d = Daemon.create (mem_config (fresh_root "deadline")) (Sheet.workload ()) in
  let resp =
    Daemon.submit d
      (request ~tenant:"t" ~deadline_ms:(-50.) [ set_op "A1" "1" ])
  in
  checki "already-expired deadline is a 408" 408 (status resp);
  Daemon.drain d

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

let test_tenant_queue_shed () =
  let cfg =
    { (mem_config (fresh_root "shed-tenant")) with Daemon.d_tenant_queue = 1 }
  in
  let d = Daemon.create cfg (toy ()) in
  checki "prime" 200 (status (Daemon.submit d (request ~tenant:"t" [ put_op 1 ])));
  let slow_resp = ref Json.Null in
  let th =
    Thread.create
      (fun () -> slow_resp := Daemon.submit d (request ~tenant:"t" [ toy_op "slow" ]))
      ()
  in
  Thread.delay 0.1;
  let resp = Daemon.submit d (request ~tenant:"t" [ toy_op "get" ]) in
  checki "second request shed" 503 (status resp);
  checkb "shed quotes retry_after_ms" true (has_retry_after resp);
  let other = Daemon.submit d (request ~tenant:"u" [ put_op 5 ]) in
  checki "other tenant unaffected" 200 (status other);
  Thread.join th;
  checki "slow batch still completed" 200 (status !slow_resp);
  checki "queue drains" 200
    (status (Daemon.submit d (request ~tenant:"t" [ toy_op "get" ])));
  Daemon.drain d

let test_global_queue_shed () =
  let cfg =
    { (mem_config (fresh_root "shed-global")) with Daemon.d_global_queue = 1 }
  in
  let d = Daemon.create cfg (toy ()) in
  checki "prime" 200 (status (Daemon.submit d (request ~tenant:"a" [ put_op 1 ])));
  let th =
    Thread.create
      (fun () -> ignore (Daemon.submit d (request ~tenant:"a" [ toy_op "slow" ])))
      ()
  in
  Thread.delay 0.1;
  let resp = Daemon.submit d (request ~tenant:"b" [ put_op 2 ]) in
  checki "global overload sheds other tenants too" 503 (status resp);
  checkb "shed quotes retry_after_ms" true (has_retry_after resp);
  Thread.join th;
  Daemon.drain d

(* ------------------------------------------------------------------ *)
(* Supervision: crash isolation, restart, circuit breaker              *)
(* ------------------------------------------------------------------ *)

let test_crash_isolation_and_recovery () =
  let root = fresh_root "crash" in
  let cfg =
    {
      (Daemon.default_config ~root ()) with
      Daemon.d_backoff_base = 0.01;
      d_backoff_cap = 0.05;
    }
  in
  let d = Daemon.create cfg (Sheet.workload ()) in
  checki "seed a" 200
    (status (Daemon.submit d (request ~tenant:"a" [ set_op "A1" "7" ])));
  checki "seed b" 200
    (status (Daemon.submit d (request ~tenant:"b" [ set_op "A1" "8" ])));
  (* kill tenant a's next WAL append: the batch crashes the session *)
  (match Daemon.find_tenant d "a" with
  | Some t -> Tenant.set_kill_hook t (Some (fst (Faults.kill_nth 1)))
  | None -> Alcotest.fail "tenant a missing");
  let resp = Daemon.submit d (request ~tenant:"a" [ set_op "A1" "9" ]) in
  checki "crashed batch is a 503" 503 (status resp);
  checkb "crash quotes retry_after_ms" true (has_retry_after resp);
  (* the blast radius is one tenant *)
  Alcotest.(check (float 0.0)) "tenant b keeps serving" 8.0
    (sheet_get d ~tenant:"b" "A1");
  (match Daemon.find_tenant d "a" with
  | Some t ->
    Tenant.set_kill_hook t None;
    checkb "crash recorded" true (Tenant.crashes t >= 1)
  | None -> assert false);
  (* the supervisor restarts tenant a from its own WAL: the crashed
     batch never committed, so the committed value survives *)
  Alcotest.(check (float 0.0)) "tenant a recovers its committed state" 7.0
    (await_recovery d ~tenant:"a" "A1");
  (match Daemon.find_tenant d "a" with
  | Some t ->
    checkb "restart counted" true (Tenant.restarts t >= 1);
    checki "success resets consecutive crashes" 0 (Tenant.crashes t)
  | None -> assert false);
  Daemon.drain d;
  rm_rf root

let test_circuit_breaker_parks_flapper () =
  let cfg =
    {
      (mem_config (fresh_root "breaker")) with
      Daemon.d_max_restarts = 2;
      d_backoff_base = 0.005;
      d_backoff_cap = 0.01;
      d_cooldown = 60.0;
    }
  in
  let d = Daemon.create cfg (toy ()) in
  checki "healthy tenant" 200
    (status (Daemon.submit d (request ~tenant:"good" [ put_op 3 ])));
  let parked = ref false in
  for _ = 1 to 40 do
    if not !parked then begin
      let resp = Daemon.submit d (request ~tenant:"flap" [ toy_op "boom" ]) in
      checki "crashing tenant always answers 503" 503 (status resp);
      (match Daemon.find_tenant d "flap" with
      | Some t -> (
        match Tenant.status t ~now:(Unix.gettimeofday ()) with
        | Tenant.Parked _ -> parked := true
        | _ -> ())
      | None -> ());
      Thread.delay 0.02
    end
  done;
  checkb "flapping tenant ends up parked" true !parked;
  (match Daemon.find_tenant d "flap" with
  | Some t -> checkb "trip counted" true (Tenant.trips t >= 1)
  | None -> assert false);
  (* the parked tenant answers 503 instantly, without a restart attempt *)
  let resp = Daemon.submit d (request ~tenant:"flap" [ toy_op "get" ]) in
  checki "parked tenant sheds" 503 (status resp);
  checkb "parked shed quotes retry" true (has_retry_after resp);
  (* its neighbour never noticed *)
  let resp = Daemon.submit d (request ~tenant:"good" [ toy_op "get" ]) in
  checki "neighbour still serving" 200 (status resp);
  Daemon.drain d

(* The ISSUE's acceptance sweep, end to end through the daemon: kill the
   durable layer at its k-th fault site mid-batch, let the supervisor
   restart the tenant from disk, and require the recovered state to be
   exactly the pre-batch or the post-batch state — never a torn one. *)
let test_kill_sweep_through_daemon () =
  let expected_pre, expected_post =
    let root = fresh_root "sweep-oracle" in
    let d = Daemon.create (mem_config root) (Sheet.workload ()) in
    checki "oracle seed" 200
      (status
         (Daemon.submit d
            (request ~tenant:"t" [ set_op "A1" "2"; set_op "A2" "=A1*3" ])));
    let pre = sheet_render d ~tenant:"t" in
    checki "oracle batch" 200
      (status
         (Daemon.submit d
            (request ~tenant:"t"
               [ set_op "A1" "5"; set_op "A2" "=A1+1"; set_op "A3" "=A2*2" ])));
    let post = sheet_render d ~tenant:"t" in
    Daemon.drain d;
    (pre, post)
  in
  let crashes = ref 0 in
  let k = ref 1 in
  let continue = ref true in
  while !continue && !k <= 64 do
    let root = fresh_root "sweep" in
    let cfg =
      {
        (Daemon.default_config ~root ()) with
        Daemon.d_backoff_base = 0.01;
        d_backoff_cap = 0.05;
      }
    in
    let d = Daemon.create cfg (Sheet.workload ()) in
    checki "seed" 200
      (status
         (Daemon.submit d
            (request ~tenant:"t" [ set_op "A1" "2"; set_op "A2" "=A1*3" ])));
    let hook, fired = Faults.kill_nth !k in
    (match Daemon.find_tenant d "t" with
    | Some t -> Tenant.set_kill_hook t (Some hook)
    | None -> Alcotest.fail "tenant missing");
    let resp =
      Daemon.submit d
        (request ~tenant:"t"
           [ set_op "A1" "5"; set_op "A2" "=A1+1"; set_op "A3" "=A2*2" ])
    in
    (match Daemon.find_tenant d "t" with
    | Some t -> Tenant.set_kill_hook t None
    | None -> ());
    if !fired then begin
      incr crashes;
      checki (Printf.sprintf "k=%d: killed batch is a 503" !k) 503 (status resp);
      ignore (await_recovery d ~tenant:"t" "A1" : float);
      let recovered = sheet_render d ~tenant:"t" in
      checkb
        (Printf.sprintf "k=%d: recovered state is pre or post, not torn" !k)
        true
        (String.equal recovered expected_pre || String.equal recovered expected_post)
    end
    else begin
      checki (Printf.sprintf "k=%d: unkilled batch commits" !k) 200 (status resp);
      checks (Printf.sprintf "k=%d: clean run reaches post" !k) expected_post
        (sheet_render d ~tenant:"t");
      continue := false
    end;
    Daemon.drain d;
    rm_rf root;
    incr k
  done;
  checkb "sweep exercised at least one crash" true (!crashes >= 1);
  checkb "sweep terminated" true (not !continue)

(* ------------------------------------------------------------------ *)
(* Drain and restart of the whole daemon                               *)
(* ------------------------------------------------------------------ *)

let test_drain_checkpoints_and_preload () =
  let root = fresh_root "lifecycle" in
  let cfg = Daemon.default_config ~root () in
  let d = Daemon.create cfg (Sheet.workload ()) in
  let th = Daemon.start d in
  checki "seed t1" 200
    (status (Daemon.submit d (request ~tenant:"t1" [ set_op "A1" "42" ])));
  checki "seed t2" 200
    (status (Daemon.submit d (request ~tenant:"t2" [ set_op "A1" "43" ])));
  checkb "ready while serving" true (Daemon.ready d);
  Daemon.drain d;
  Thread.join th;
  checkb "drained daemon reports draining" true (Daemon.draining d);
  (* drain checkpointed every tenant: snapshots exist on disk *)
  List.iter
    (fun id ->
      let dir = Filename.concat (Filename.concat root "tenants") id in
      checkb (id ^ " has a snapshot") true (Durable.snapshots dir <> []))
    [ "t1"; "t2" ];
  (* a fresh daemon on the same root preloads every tenant before ready *)
  let d2 = Daemon.create cfg (Sheet.workload ()) in
  checkb "not ready before preload" false (Daemon.ready d2);
  checki "preload finds both tenants" 2 (Daemon.preload d2);
  checkb "ready after preload" true (Daemon.ready d2);
  Alcotest.(check (float 0.0)) "t1 recovered" 42.0 (sheet_get d2 ~tenant:"t1" "A1");
  Alcotest.(check (float 0.0)) "t2 recovered" 43.0 (sheet_get d2 ~tenant:"t2" "A1");
  Daemon.drain d2;
  rm_rf root

(* ------------------------------------------------------------------ *)
(* The socket layer                                                    *)
(* ------------------------------------------------------------------ *)

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let send_line fd s = Serve.write_all fd (s ^ "\n")

let test_ndjson_over_socket_with_slow_client () =
  let cfg = mem_config (fresh_root "socket") in
  let d = Daemon.create cfg (Sheet.workload ()) in
  let th = Daemon.start d in
  let port = Daemon.port d in
  (* a stalled client that never sends a byte must not block others *)
  let stalled = connect port in
  let fd = connect port in
  let ic = Unix.in_channel_of_descr fd in
  send_line fd {|{"op":"ping"}|};
  send_line fd
    {|{"id":7,"tenant":"acme","ops":[{"op":"set","cell":"A1","v":"=6*7"},{"op":"get","cell":"A1"}]}|};
  send_line fd {|not json|};
  let l1 = Json.of_string (input_line ic) in
  checki "socket ping" 200 (status l1);
  let l2 = Json.of_string (input_line ic) in
  checki "socket batch" 200 (status l2);
  checkb "responses carry the request id" true
    (Json.member "id" l2 = Some (Json.Num 7.));
  Alcotest.(check (float 0.0)) "A1 = 42 over the wire" 42.0
    (got_num (List.nth (results l2) 1));
  let l3 = Json.of_string (input_line ic) in
  checki "bad json answers 400 without killing the connection" 400 (status l3);
  (* the connection survives the parse error *)
  send_line fd {|{"op":"ping"}|};
  checki "connection still live" 200 (status (Json.of_string (input_line ic)));
  (* many concurrent clients, one thread each, interleaved *)
  let clients =
    List.init 4 (fun i ->
        Thread.create
          (fun () ->
            let fd = connect port in
            let ic = Unix.in_channel_of_descr fd in
            send_line fd
              (Json.to_string
                 (request ~tenant:(Printf.sprintf "c%d" i)
                    [ set_op "A1" (string_of_int i); get_op "A1" ]));
            let resp = Json.of_string (input_line ic) in
            assert (status resp = 200);
            assert (got_num (List.nth (results resp) 1) = float_of_int i);
            Unix.close fd)
          ())
  in
  List.iter Thread.join clients;
  Unix.close fd;
  Unix.close stalled;
  Daemon.drain d;
  Thread.join th

let test_health_surface () =
  let cfg =
    { (mem_config (fresh_root "health")) with Daemon.d_metrics_port = Some 0 }
  in
  let d = Daemon.create cfg (Sheet.workload ()) in
  let th = Daemon.start d in
  let rec await_ready n =
    if (not (Daemon.ready d)) && n > 0 then begin
      Thread.delay 0.02;
      await_ready (n - 1)
    end
  in
  await_ready 100;
  let hport = match Daemon.metrics_port d with Some p -> p | None -> assert false in
  let http_get path =
    let fd = connect hport in
    Serve.write_all fd (Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path);
    let buf = Buffer.create 256 in
    let chunk = Bytes.create 1024 in
    let rec slurp () =
      match Unix.read fd chunk 0 1024 with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        slurp ()
      | exception Unix.Unix_error (_, _, _) -> ()
    in
    slurp ();
    Unix.close fd;
    Buffer.contents buf
  in
  checki "one tenant" 200
    (status (Daemon.submit d (request ~tenant:"t" [ set_op "A1" "1" ])));
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  checkb "readyz is 200 while serving" true (contains (http_get "/readyz") "200");
  checkb "healthz reports tenants" true (contains (http_get "/healthz") "tenants 1");
  checkb "tenantz lists the tenant" true (contains (http_get "/tenantz") "\"t\"");
  checkb "metrics exposition has daemon cells" true
    (contains (http_get "/metrics") "daemon_requests_total");
  Daemon.drain d;
  checkb "readyz gates while draining" true (contains (http_get "/readyz") "503");
  Thread.join th

let test_serve_oversize_431 () =
  let s =
    Serve.create ~port:0 [ ("/ok", fun _ -> Serve.text "fine") ]
  in
  let th = Thread.create (fun () -> Serve.serve ~max_requests:2 s) () in
  let fd = connect (Serve.port s) in
  Serve.write_all fd ("GET /" ^ String.make 9000 'x' ^ " HTTP/1.0\r\n\r\n");
  let ic = Unix.in_channel_of_descr fd in
  let line = try input_line ic with End_of_file -> "" in
  checkb "oversize request answers 431" true
    (String.length line >= 12 && String.sub line 9 3 = "431");
  Unix.close fd;
  (* the listener survives the oversize request *)
  let fd = connect (Serve.port s) in
  Serve.write_all fd "GET /ok HTTP/1.0\r\n\r\n";
  let ic = Unix.in_channel_of_descr fd in
  let line = try input_line ic with End_of_file -> "" in
  checkb "next request serves normally" true
    (String.length line >= 12 && String.sub line 9 3 = "200");
  Unix.close fd;
  Thread.join th;
  checki "oversize counted" 1 (Serve.oversize_requests s)

let () =
  Alcotest.run "daemon"
    [
      ( "protocol",
        [
          Alcotest.test_case "ping and batch round-trip" `Quick test_ping_and_batch;
          Alcotest.test_case "protocol errors are 400s" `Quick test_protocol_errors;
          Alcotest.test_case "draining sheds with retry" `Quick test_draining_503;
        ] );
      ( "budgets",
        [
          Alcotest.test_case "step budget: 408 + rollback" `Quick
            test_budget_408_rolls_back;
          Alcotest.test_case "expired deadline: 408 before the batch" `Quick
            test_deadline_in_queue;
        ] );
      ( "admission",
        [
          Alcotest.test_case "per-tenant queue sheds" `Quick test_tenant_queue_shed;
          Alcotest.test_case "global queue sheds" `Quick test_global_queue_shed;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "crash isolation and recovery" `Quick
            test_crash_isolation_and_recovery;
          Alcotest.test_case "circuit breaker parks a flapper" `Quick
            test_circuit_breaker_parks_flapper;
          Alcotest.test_case "kill sweep through the daemon" `Slow
            test_kill_sweep_through_daemon;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "drain checkpoints, restart preloads" `Quick
            test_drain_checkpoints_and_preload;
        ] );
      ( "serve",
        [
          Alcotest.test_case "ndjson over sockets, slow + concurrent clients"
            `Quick test_ndjson_over_socket_with_slow_client;
          Alcotest.test_case "health surface" `Quick test_health_surface;
          Alcotest.test_case "oversize request is a 431" `Quick
            test_serve_oversize_431;
        ] );
    ]
