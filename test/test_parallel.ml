(* The parallel evaluator's acceptance suite: output equality with the
   serial evaluator under every domain count (Theorem 5.1 must not
   notice the pool), re-execution bounds, level-front introspection, the
   writers-aware E15 speedup bound, and the well-nestedness of the
   telemetry stream flushed from worker domains. *)

module Engine = Alphonse.Engine
module Var = Alphonse.Var
module Func = Alphonse.Func
module Parallel = Alphonse.Parallel
module Inspect = Alphonse.Inspect
module Telemetry = Alphonse.Telemetry

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* The E14 diamond: one input fanning out to two siblings joined by a
   top sum — the smallest graph with a level of width two. *)
let diamond ?scheduling () =
  let eng = Engine.create ?scheduling ~default_strategy:Engine.Eager () in
  let a = Var.create eng ~name:"a" 1 in
  let f = Func.create eng ~name:"f" (fun _ () -> Var.get a + 1) in
  let g = Func.create eng ~name:"g" (fun _ () -> Var.get a * 2) in
  let top =
    Func.create eng ~name:"top" (fun _ () -> Func.call f () + Func.call g ())
  in
  (eng, a, top)

let play_diamond ?scheduling () =
  let eng, a, top = diamond ?scheduling () in
  let buf = Buffer.create 64 in
  let q () =
    Engine.stabilize eng;
    Buffer.add_string buf (Fmt.str "%d;" (Func.call top ()))
  in
  q ();
  Var.set a 5;
  q ();
  Var.set a (-3);
  q ();
  Var.set a 5;
  q ();
  (Buffer.contents buf, eng)

(* Diamond under domains 1, 2 and 4: same observations as the serial
   evaluator, and no more re-executions than the serial topological
   count plus duplicates bounded by the widest level (the claim table
   makes the slack zero in practice, but only the bound is contractual). *)
let test_diamond_domains () =
  let serial_out, serial_eng = play_diamond () in
  let serial_execs = (Engine.stats serial_eng).Engine.executions in
  let max_level_width = 2 in
  List.iter
    (fun d ->
      let out, eng = play_diamond ~scheduling:(Parallel.scheduling ~domains:d) () in
      checks (Fmt.str "output equal at %d domain(s)" d) serial_out out;
      let st = Engine.stats eng in
      checkb
        (Fmt.str "executions within bound at %d domain(s)" d)
        true
        (st.Engine.executions >= serial_execs
        && st.Engine.executions <= serial_execs + max_level_width);
      checkb
        (Fmt.str "parallel machinery engaged at %d domain(s)" d)
        true
        (st.Engine.par_levels > 0 && st.Engine.par_tasks > 0))
    [ 1; 2; 4 ]

(* Level-front introspection: an input edit queues only the storage cell
   (successors join the inconsistent set as the cell pops), so the
   pending front is [a]; the settle itself then runs exactly three
   fronts — a; f g; top — visible as the stats delta. *)
let test_levels_introspection () =
  let eng, a, top = diamond ~scheduling:(Parallel.scheduling ~domains:2) () in
  ignore (Func.call top ());
  Engine.stabilize eng;
  checki "quiescent: no pending levels" 0 (List.length (Parallel.levels eng));
  checki "quiescent: max width 0" 0 (Parallel.max_width eng);
  Var.set a 9;
  let widths = List.map List.length (Parallel.levels eng) in
  Alcotest.(check (list int)) "pending level widths" [ 1 ] widths;
  checki "max width" 1 (Parallel.max_width eng);
  let st0 = Engine.stats eng in
  Engine.stabilize eng;
  checki "settled: no pending levels" 0 (List.length (Parallel.levels eng));
  checki "settled value" 28 (Func.call top ());
  let st1 = Engine.stats eng in
  checki "three level fronts for the edit" 3
    (st1.Engine.par_levels - st0.Engine.par_levels);
  checki "three pool tasks for the edit" 3
    (st1.Engine.par_tasks - st0.Engine.par_tasks)

(* Satellite fix pin: the 3-node diamond's E15 bound is exactly 3
   instances / 2 levels = 1.5. *)
let test_profile_diamond_bound () =
  let eng, _a, top = diamond () in
  ignore (Func.call top ());
  Engine.stabilize eng;
  let p = Inspect.parallel_profile eng in
  checki "instances" 3 p.Inspect.total_instances;
  checki "critical path" 2 p.Inspect.critical_path;
  checki "max width" 2 p.Inspect.max_width;
  Alcotest.(check (float 1e-6)) "E15 speedup bound" 1.5 p.Inspect.speedup_bound

(* Satellite fix pin: a maintained write-then-read chain w -> s -> r is
   serial. All dependency edges point from the cell s to its consumers,
   so a pred walk sees w and r as independent — the pred-only rule put
   both on one level and reported a 2.0x bound for a chain with no
   parallelism at all. The writers-aware rule charges the writer to the
   reader's depth: critical path 2, bound 1.0. *)
let test_profile_writers_chain () =
  let eng = Engine.create ~default_strategy:Engine.Eager () in
  let a = Var.create eng ~name:"a" 1 in
  let s = Var.create eng ~name:"s" 0 in
  let w =
    Func.create eng ~name:"w" (fun _ () -> Var.set s (Var.get a * 10))
  in
  let r = Func.create eng ~name:"r" (fun _ () -> Var.get s + 1) in
  ignore (Func.call w ());
  checki "r sees the maintained write" 11 (Func.call r ());
  Engine.stabilize eng;
  let p = Inspect.parallel_profile eng in
  checki "instances" 2 p.Inspect.total_instances;
  checki "write-then-read critical path" 2 p.Inspect.critical_path;
  Alcotest.(check (float 1e-6)) "no parallelism" 1.0 p.Inspect.speedup_bound

(* The flushed telemetry stream: Par_domain brackets never nest, the
   Exec begin/end events inside a bracket are properly nested (the
   bracket replays one worker's buffer in order), and level begin/end
   markers alternate with matching level numbers. *)
let test_telemetry_well_nested () =
  let eng, a, top = diamond ~scheduling:(Parallel.scheduling ~domains:4) () in
  let tm = Telemetry.create () in
  Engine.set_telemetry eng (Some tm);
  ignore (Func.call top ());
  Engine.stabilize eng;
  Var.set a 7;
  Engine.stabilize eng;
  let open_domain = ref None in
  let exec_stack = ref [] in
  let open_level = ref None in
  let brackets = ref 0 in
  Telemetry.iter tm (fun { Telemetry.ev; _ } ->
      match ev with
      | Telemetry.Par_domain_begin { domain } ->
        checkb "brackets do not nest" true (!open_domain = None);
        open_domain := Some domain;
        incr brackets;
        exec_stack := []
      | Telemetry.Par_domain_end { domain } ->
        checkb "bracket ends match" true (!open_domain = Some domain);
        checkb "execs closed before bracket end" true (!exec_stack = []);
        open_domain := None
      | Telemetry.Exec_begin { id; _ } when !open_domain <> None ->
        exec_stack := id :: !exec_stack
      | Telemetry.Exec_end { id; _ } when !open_domain <> None -> (
        match !exec_stack with
        | top :: rest ->
          checki "exec events are LIFO within a bracket" top id;
          exec_stack := rest
        | [] -> Alcotest.fail "Exec_end without Exec_begin in bracket")
      | Telemetry.Par_level_begin { level; _ } ->
        checkb "level fronts do not nest" true (!open_level = None);
        open_level := Some level
      | Telemetry.Par_level_end { level; _ } ->
        checkb "level ends match" true (!open_level = Some level);
        open_level := None
      | _ -> ());
  checkb "no dangling bracket" true (!open_domain = None);
  checkb "no dangling level" true (!open_level = None);
  checkb "at least one bracket flushed" true (!brackets > 0);
  let occ = Telemetry.par_occupancy tm in
  checkb "occupancy sees the level fronts" true (occ.Telemetry.par_levels > 0);
  checkb "occupancy sees dispatched tasks" true (occ.Telemetry.par_dispatched > 0);
  let counted =
    List.fold_left
      (fun acc (o : Telemetry.par_occupancy) -> acc + o.Telemetry.domain_tasks)
      0 occ.Telemetry.occupancy
  in
  checkb "per-domain task counts cover the dispatches" true (counted > 0)

let () =
  Alcotest.run "parallel"
    [
      ( "settle",
        [
          Alcotest.test_case "diamond under 1/2/4 domains" `Quick
            test_diamond_domains;
          Alcotest.test_case "level-front introspection" `Quick
            test_levels_introspection;
        ] );
      ( "profile",
        [
          Alcotest.test_case "diamond E15 bound is 1.5" `Quick
            test_profile_diamond_bound;
          Alcotest.test_case "write-then-read chain is serial" `Quick
            test_profile_writers_chain;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "worker events are well-nested" `Quick
            test_telemetry_well_nested;
        ] );
    ]
