(* The fault-injection harness (the robustness acceptance suite).

   The sweep is the centerpiece: run each workload once under a counting
   hook to learn how many times the engine pokes its fault sites, then
   re-run it once per poke with a one-shot injector crashing that exact
   decision point. After every injected crash the invariant auditor must
   pass and replaying the (deterministic, idempotent) scenario must
   converge to the clean run's observations — the exhaustive-spec
   answer. Around the sweep: unit tests for the quarantine/poison
   lifecycle, transactional batches with rollback, the watchdogs, the
   spreadsheet's error-value surface, and the injectors themselves. *)

module Engine = Alphonse.Engine
module Var = Alphonse.Var
module Func = Alphonse.Func
module Faults = Alphonse.Faults
module Audit = Alphonse.Audit
module S = Spreadsheet.Sheet
module Avl = Trees.Avl
module Ag = Attrgram.Ag
module Binary = Attrgram.Binary

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let par4 = Engine.Parallel { domains = 4 }

let check_audit what eng =
  match Engine.audit_errors eng with
  | [] -> ()
  | errs -> Alcotest.failf "%s: audit: %s" what (String.concat "; " errs)

let node_of f arg =
  match Func.node f arg with
  | Some n -> n
  | None -> Alcotest.fail "instance has no node"

(* ------------------------------------------------------------------ *)
(* The sweep harness                                                   *)
(* ------------------------------------------------------------------ *)

(* A workload is a fresh engine plus a deterministic, idempotent
   scenario: edits interleaved with queries, rendered to a string.
   Because replaying the scenario recreates every intermediate state, a
   replay after any recovered fault must reproduce the clean output. *)
type workload = unit -> Engine.t * (unit -> string)

(* CI audit mode: ALPHONSE_AUDIT=1 additionally runs the invariant
   auditor after every settle step of every sweep engine. *)
let audit_mode = Sys.getenv_opt "ALPHONSE_AUDIT" = Some "1"

let sweep (make : workload) () =
  let make () =
    let eng, play = make () in
    if audit_mode then Engine.set_self_audit eng true;
    (eng, play)
  in
  let eng0, play0 = make () in
  let oracle, counts = Faults.count eng0 play0 in
  let total = Faults.total counts in
  checkb "workload exercises fault sites" true (total > 0);
  for k = 1 to total do
    let eng, play = make () in
    let fired = Faults.inject_nth eng k in
    (match play () with
    | (_ : string) -> ()
    | exception Faults.Injected _ -> ()
    | exception Engine.Poisoned _ -> ());
    checkb (Fmt.str "fault %d/%d fired" k total) true !fired;
    Faults.clear eng;
    check_audit (Fmt.str "after fault %d/%d" k total) eng;
    (* recovery: the replayed scenario converges to the clean answer *)
    checks (Fmt.str "recovery after fault %d/%d" k total) oracle (play ());
    check_audit (Fmt.str "after recovery %d/%d" k total) eng
  done

(* A var/func diamond plus an independent component: marks, edges,
   settles, and — when partitioned — partition melds. *)
let diamond ?scheduling ~strategy ~partitioning () =
  let eng = Engine.create ?scheduling ~default_strategy:strategy ~partitioning () in
  let a = Var.create eng ~name:"a" 2 in
  let b = Var.create eng ~name:"b" 5 in
  let z = Var.create eng ~name:"z" 100 in
  let f = Func.create eng ~name:"f" (fun _ () -> Var.get a + Var.get b) in
  let g = Func.create eng ~name:"g" (fun _ () -> Var.get a * Var.get b) in
  let top =
    Func.create eng ~name:"top" (fun _ () -> Func.call f () + Func.call g ())
  in
  let other = Func.create eng ~name:"other" (fun _ () -> Var.get z - 1) in
  let play () =
    let buf = Buffer.create 64 in
    let q () =
      Engine.stabilize eng;
      Buffer.add_string buf
        (Fmt.str "%d/%d;" (Func.call top ()) (Func.call other ()))
    in
    (* pin the initial state so a replay after an aborted attempt starts
       from the same place *)
    Var.set a 2;
    Var.set b 5;
    Var.set z 100;
    q ();
    Var.set a 3;
    q ();
    Var.set b (-4);
    Var.set z 7;
    q ();
    Var.set a 10;
    Var.set a 3 (* equal-value round trip: must propagate nothing *);
    q ();
    Buffer.contents buf
  in
  (eng, play)

(* The §7.2 spreadsheet. Queries record the incremental AND the
   exhaustive value of every cell, so convergence to the from-scratch
   specification is part of the oracle string itself. *)
let sheet_workload ?scheduling () =
  let s = S.create ?scheduling () in
  let cells = [ (0, 0); (0, 1); (0, 2); (1, 0); (1, 1) ] in
  (* A1 A2 A3 B1 B2 *)
  let play () =
    let buf = Buffer.create 256 in
    let q () =
      List.iter
        (fun c ->
          Buffer.add_string buf
            (Fmt.str "%a|%a;" S.pp_value (S.value s c) S.pp_value
               (S.exhaustive_value s c)))
        cells
    in
    S.set s "A1" "4";
    S.set s "A2" "=A1*A1";
    S.set s "A3" "=A2+A1";
    S.set s "B1" "=SUM(A1:A3)";
    S.set s "B2" "=B1/A1";
    q ();
    S.set s "A1" "0" (* B2 becomes #DIV/0! *);
    q ();
    S.set s "A1" "2";
    S.set s "A3" "=SQRT(A2-100)" (* #ARG! flowing into B1 *);
    q ();
    Buffer.contents buf
  in
  (S.engine s, play)

(* The §7.3 AVL tree: side-effecting maintained balancing. The prologue
   deletes the whole key universe so the scenario is idempotent even
   when a fault aborted the previous attempt midway. *)
let avl_workload ?scheduling () =
  let eng = Engine.create ?scheduling () in
  let t = Avl.create eng in
  let universe = [ 1; 2; 3; 5; 6; 7; 8; 9 ] in
  let play () =
    List.iter (fun k -> Avl.delete t k) universe;
    Avl.rebalance t;
    let buf = Buffer.create 64 in
    let q () =
      Avl.rebalance t;
      Buffer.add_string buf
        (Fmt.str "%a/h%d/%b%b;"
           Fmt.(Dump.list int)
           (Avl.to_list t) (Avl.height t)
           (Avl.is_ordered (Avl.root t))
           (Avl.is_balanced (Avl.root t)))
    in
    List.iter (fun k -> Avl.insert t k) [ 5; 2; 8; 1; 9; 3; 7 ];
    q ();
    Avl.delete t 2;
    Avl.insert t 6;
    q ();
    Buffer.contents buf
  in
  (eng, play)

(* Knuth's binary-numeral attribute grammar: inherited + synthesized
   attribute re-evaluation under edits, with the from-scratch reference
   folded into the oracle. Bit edits are idempotent sets (not flips). *)
let attrgram_workload ?scheduling () =
  let eng = Engine.create ?scheduling () in
  let g = Binary.create eng in
  let n = Binary.of_string g "1101.01" in
  let leaves = Array.of_list (Binary.bit_leaves n) in
  let set_bit i v = Ag.set_terminal leaves.(i) "b" (Binary.I v) in
  let play () =
    let buf = Buffer.create 64 in
    let q () =
      Buffer.add_string buf
        (Fmt.str "%g|%g;" (Binary.value_of g n) (Binary.exhaustive_value n))
    in
    (* pin every bit so a replay after an aborted attempt starts from
       the same numeral *)
    List.iteri set_bit [ 1; 1; 0; 1; 0; 1 ];
    set_bit 0 1;
    set_bit 2 0;
    set_bit 5 1;
    q ();
    set_bit 0 0 (* 0101.11 *);
    q ();
    set_bit 3 0;
    set_bit 5 0;
    q ();
    Buffer.contents buf
  in
  (eng, play)

(* ------------------------------------------------------------------ *)
(* Quarantine and poisoning                                            *)
(* ------------------------------------------------------------------ *)

let test_quarantine_then_poison () =
  let eng = Engine.create ~max_retries:2 () in
  let a = Var.create eng ~name:"a" 1 in
  let boom = ref true in
  let f =
    Func.create eng ~name:"f" (fun _ () ->
        if !boom then failwith "boom";
        Var.get a * 2)
  in
  (match Func.call f () with
  | _ -> Alcotest.fail "expected raise"
  | exception Failure _ -> ());
  let n = node_of f () in
  checki "one failure" 1 (Engine.failure_count eng n);
  checkb "not yet poisoned" false (Engine.poisoned eng n);
  checkb "quarantined" true (List.memq n (Engine.quarantined eng));
  (match Func.call f () with
  | _ -> Alcotest.fail "expected raise"
  | exception Failure _ -> ());
  checkb "poisoned after max_retries" true (Engine.poisoned eng n);
  checkb "left quarantine" false (List.memq n (Engine.quarantined eng));
  (* reads now get the typed error, not the raw exception *)
  (match Func.call f () with
  | _ -> Alcotest.fail "expected Poisoned"
  | exception Engine.Poisoned name -> checks "names instance" "f" name);
  checkb "poisoning exception kept" true
    (match Engine.poison_error eng n with Some (Failure _) -> true | _ -> false);
  check_audit "poisoned state" eng;
  (* explicit recovery retries and a success resets the budget *)
  boom := false;
  Engine.clear_poison eng n;
  checki "recovers" 2 (Func.call f ());
  checki "failure count reset" 0 (Engine.failure_count eng n);
  Var.set a 5;
  checki "still incremental" 10 (Func.call f ());
  check_audit "recovered" eng

(* clear_poison grants a FULL fresh retry budget (it zeroes
   failure_count by design): a still-broken instance re-enters the
   quarantine → poison lifecycle from the top, failing max_retries
   times again before re-poisoning, instead of being instantly
   re-poisoned by its stale count. *)
let test_clear_poison_requarantines () =
  let eng = Engine.create ~max_retries:2 () in
  let boom = ref true in
  let f =
    Func.create eng ~name:"f" (fun _ () ->
        if !boom then failwith "boom";
        1)
  in
  let fail_once () =
    match Func.call f () with
    | _ -> Alcotest.fail "expected raise"
    | exception Failure _ -> ()
  in
  fail_once ();
  fail_once ();
  let n = node_of f () in
  checkb "poisoned" true (Engine.poisoned eng n);
  Engine.clear_poison eng n;
  checki "budget reset by clear_poison" 0 (Engine.failure_count eng n);
  (* still broken: the first fresh failure re-quarantines — it must NOT
     re-poison off the pre-clear count *)
  fail_once ();
  checki "one fresh failure" 1 (Engine.failure_count eng n);
  checkb "re-quarantined" true (List.memq n (Engine.quarantined eng));
  checkb "not yet re-poisoned" false (Engine.poisoned eng n);
  fail_once ();
  checkb "re-poisoned only after a full budget" true (Engine.poisoned eng n);
  boom := false;
  Engine.clear_poison eng n;
  checki "recovers" 1 (Func.call f ());
  check_audit "after a re-poison cycle" eng

let test_poison_propagates_without_charge () =
  let eng = Engine.create ~max_retries:1 () in
  let broken = ref true in
  let bad =
    Func.create eng ~name:"bad" (fun _ () ->
        if !broken then failwith "boom" else 7)
  in
  (* poison the origin directly *)
  (match Func.call bad () with
  | _ -> Alcotest.fail "expected raise"
  | exception Failure _ -> ());
  checkb "origin poisoned" true (Engine.poisoned eng (node_of bad ()));
  (* a dependent's reads re-raise the typed error, naming the origin... *)
  let dep = Func.create eng ~name:"dep" (fun _ () -> Func.call bad () + 1) in
  (match Func.call dep () with
  | _ -> Alcotest.fail "expected Poisoned"
  | exception Engine.Poisoned name -> checks "blames origin" "bad" name);
  (match Func.call dep () with
  | _ -> Alcotest.fail "expected Poisoned"
  | exception Engine.Poisoned _ -> ());
  (* ...without ever consuming the dependent's own retry budget: with
     max_retries = 1 a single charge would already have poisoned it *)
  checkb "dependent not poisoned" false (Engine.poisoned eng (node_of dep ()));
  checki "dependent not charged" 0 (Engine.failure_count eng (node_of dep ()));
  (* clearing the origin heals the whole cone *)
  broken := false;
  Engine.clear_poison eng (node_of bad ());
  checki "cone recovers" 8 (Func.call dep ());
  check_audit "after recovery" eng

let test_stabilize_total_and_retry () =
  let eng = Engine.create () in
  let a = Var.create eng ~name:"a" 1 in
  let boom = ref false in
  let f =
    Func.create eng ~name:"f" ~strategy:Engine.Eager (fun _ () ->
        if !boom then failwith "boom";
        Var.get a * 10)
  in
  let g =
    Func.create eng ~name:"g" ~strategy:Engine.Eager (fun _ () -> Var.get a + 1)
  in
  checki "f" 10 (Func.call f ());
  checki "g" 2 (Func.call g ());
  boom := true;
  Var.set a 2;
  (* settlement is total: f's failure is quarantined, g still settles *)
  Engine.stabilize eng;
  checki "g settled despite f" 3 (Func.call g ());
  checkb "f quarantined" true (List.memq (node_of f ()) (Engine.quarantined eng));
  checkb "failures counted" true ((Engine.stats eng).Engine.failures >= 1);
  check_audit "with quarantine pending" eng;
  (* the next stabilize retries the quarantined instance *)
  boom := false;
  Engine.stabilize eng;
  checki "f recovered" 20 (Func.call f ());
  checkb "retry recorded" true ((Engine.stats eng).Engine.retries >= 1);
  checkb "quarantine drained" false
    (List.memq (node_of f ()) (Engine.quarantined eng));
  check_audit "after retry" eng

(* An injected fault that fires in run_instance BEFORE the body (the
   clear-preds poke) must be recorded like a body failure: the settle
   loop has already dequeued the instance, so a bypassed handler would
   leave a previously-consistent eager instance unqueued with
   [consistent] still set — its pending invalidation silently lost and
   reads stale until the next unrelated input change. *)
let test_prebody_fault_is_recorded () =
  let eng = Engine.create () in
  let a = Var.create eng ~name:"a" 1 in
  let f =
    Func.create eng ~name:"f" ~strategy:Engine.Eager (fun _ () ->
        Var.get a * 2)
  in
  checki "clean" 2 (Func.call f ());
  let fired = Faults.inject_nth eng ~only:"clear-preds" 1 in
  Var.set a 5;
  (* settlement is total: the pre-body fault is swallowed like any other
     instance failure, but it must land f in quarantine *)
  Engine.stabilize eng;
  checkb "fault fired" true !fired;
  Faults.clear eng;
  check_audit "after pre-body fault" eng;
  checkb "failure recorded: quarantined" true
    (List.memq (node_of f ()) (Engine.quarantined eng));
  (* the invalidation was not lost: a read right now recomputes *)
  checki "read is not stale" 10 (Func.call f ());
  Engine.stabilize eng;
  checkb "quarantine drained" false
    (List.memq (node_of f ()) (Engine.quarantined eng));
  check_audit "recovered" eng

(* ------------------------------------------------------------------ *)
(* Transactions                                                        *)
(* ------------------------------------------------------------------ *)

let test_transact_commit () =
  let eng = Engine.create () in
  let a = Var.create eng ~name:"a" 1 in
  let b = Var.create eng ~name:"b" 2 in
  let sum = Func.create eng ~name:"sum" (fun _ () -> Var.get a + Var.get b) in
  checki "initial" 3 (Func.call sum ());
  let mid =
    Engine.transact eng (fun () ->
        Var.set a 10;
        let mid = Func.call sum () (* demand read sees the partial batch *) in
        Var.set b 20;
        mid)
  in
  checki "read inside batch" 12 mid;
  checkb "txn closed" false (Engine.in_transaction eng);
  checki "committed" 30 (Func.call sum ());
  check_audit "after commit" eng

let test_transact_rollback () =
  let eng = Engine.create () in
  let a = Var.create eng ~name:"a" 1 in
  let b = Var.create eng ~name:"b" 2 in
  let runs = ref 0 in
  let sum =
    Func.create eng ~name:"sum" (fun _ () ->
        incr runs;
        Var.get a + Var.get b)
  in
  checki "initial" 3 (Func.call sum ());
  (match
     Engine.transact eng (fun () ->
         Var.set a 100;
         (* cache sum against the batch's intermediate state *)
         checki "intermediate" 102 (Func.call sum ());
         Var.set b 200;
         failwith "abort")
   with
  | () -> Alcotest.fail "expected abort"
  | exception Failure _ -> ());
  checkb "txn closed" false (Engine.in_transaction eng);
  checki "a restored" 1 (Var.get a);
  checki "b restored" 2 (Var.get b);
  (* the instance that ran against the discarded state was re-invalidated:
     this read recomputes from the restored inputs, no stale 102 *)
  let before = !runs in
  checki "recomputed from restored state" 3 (Func.call sum ());
  checki "really re-executed" (before + 1) !runs;
  checki "rollback counted" 1 (Engine.stats eng).Engine.rollbacks;
  check_audit "after rollback" eng

let test_transact_rollback_on_injected_settle_fault () =
  let eng = Engine.create () in
  let a = Var.create eng ~name:"a" 1 in
  let total =
    Func.create eng ~name:"total" ~strategy:Engine.Eager (fun _ () ->
        Var.get a * 2)
  in
  checki "initial" 2 (Func.call total ());
  (* crash the commit settle: the first settle-pop of the batch *)
  let fired = Faults.inject_nth eng ~only:"settle-pop" 1 in
  (match Engine.transact eng (fun () -> Var.set a 5) with
  | () -> Alcotest.fail "expected injected fault"
  | exception Faults.Injected _ -> ());
  checkb "fault fired" true !fired;
  Faults.clear eng;
  checkb "txn closed" false (Engine.in_transaction eng);
  checki "write rolled back" 1 (Var.get a);
  check_audit "after aborted commit" eng;
  (* the batch can simply be retried *)
  Engine.transact eng (fun () -> Var.set a 5);
  checki "retried batch commits" 10 (Func.call total ());
  check_audit "after retry" eng

let test_transact_nesting_rejected () =
  let eng = Engine.create () in
  checkb "nested rejected" true
    (match Engine.transact eng (fun () -> Engine.transact eng (fun () -> ()))
     with
    | () -> false
    | exception Invalid_argument _ -> true);
  checkb "txn closed after rejection" false (Engine.in_transaction eng);
  let f = Func.create eng ~name:"probe" (fun _ () -> 5) in
  checki "engine usable" 5 (Func.call f ());
  (* and from inside an incremental execution *)
  let g =
    Func.create eng ~name:"inside" (fun _ () ->
        Engine.transact eng (fun () -> 1))
  in
  checkb "rejected inside execution" true
    (match Func.call g () with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_audit "after rejections" eng

(* ------------------------------------------------------------------ *)
(* Watchdogs                                                           *)
(* ------------------------------------------------------------------ *)

let test_settle_watchdog_degrades () =
  let eng = Engine.create ~max_settle_steps:3 () in
  let a = Var.create eng ~name:"a" 1 in
  let fs =
    Array.init 10 (fun i ->
        Func.create eng ~name:(Fmt.str "f%d" i) ~strategy:Engine.Eager
          (fun _ () -> Var.get a + i))
  in
  Array.iter (fun f -> ignore (Func.call f ())) fs;
  Var.set a 2;
  (* far more than 3 steps pending: the watchdog degrades instead of
     letting one settle session run away *)
  Engine.stabilize eng;
  checkb "degradation recorded" true ((Engine.stats eng).Engine.degradations >= 1);
  check_audit "after degradation" eng;
  (* the exhaustive fallback still answers every demand correctly *)
  Array.iteri (fun i f -> checki (Fmt.str "f%d" i) (2 + i) (Func.call f ())) fs;
  check_audit "after exhaustive recomputation" eng

let test_stack_depth_watchdog () =
  let eng = Engine.create ~max_stack_depth:8 () in
  let f =
    Func.create eng ~name:"deep" (fun self n ->
        if n = 0 then 0 else Func.call self (n - 1) + 1)
  in
  (match Func.call f 100 with
  | _ -> Alcotest.fail "expected Watchdog"
  | exception Engine.Watchdog _ -> ());
  check_audit "after watchdog unwind" eng;
  checki "shallow recursion still fine" 5 (Func.call f 5);
  check_audit "after recovery" eng

(* The depth limit is structural: a nested frame's Watchdog unwinding
   through its callers must not charge their retry budgets (with
   max_retries = 1 a single charge would poison every frame on the
   chain for a condition retries can never fix). *)
let test_stack_depth_watchdog_structural () =
  let eng = Engine.create ~max_stack_depth:4 ~max_retries:1 () in
  let f =
    Func.create eng ~name:"deep" (fun self n ->
        if n = 0 then 0 else Func.call self (n - 1) + 1)
  in
  (match Func.call f 100 with
  | _ -> Alcotest.fail "expected Watchdog"
  | exception Engine.Watchdog _ -> ());
  checkb "outer frame not poisoned" false
    (Engine.poisoned eng (node_of f 100));
  checki "no retry budget consumed" 0
    (Engine.failure_count eng (node_of f 100));
  checkb "not quarantined" false
    (List.memq (node_of f 100) (Engine.quarantined eng));
  check_audit "after unwind" eng;
  checki "recursion within the limit still fine" 3 (Func.call f 3);
  check_audit "after recovery" eng

(* settle_bounded must not declare a partition quiescent when nodes were
   skipped because they sat on the call stack: regression for the
   reinsert finalizer clearing the skip list before the quiescence
   check, which stranded still-queued nodes in a partition no longer
   flagged dirty. *)
let test_settle_bounded_on_stack_skip () =
  let eng = Engine.create () in
  let a = Var.create eng ~name:"a" 1 in
  let b = Var.create eng ~name:"b" 0 in
  let inside = ref None in
  let h =
    Func.create eng ~name:"h" (fun _ () ->
        let v = Var.get a in
        if v > 1 then begin
          (* re-dirty one of our own recorded dependencies and drive a
             bounded settle from inside the execution: the drain pops
             this very instance, finds it on-stack, and must keep the
             partition dirty *)
          Var.set b 9;
          inside := Some (Engine.settle_bounded eng ~max_steps:100)
        end;
        (v * 2) + Var.get b)
  in
  checki "clean run" 2 (Func.call h ());
  Var.set a 2;
  checki "re-run" 13 (Func.call h ());
  checkb "not quiescent while the executing instance is skipped" false
    (match !inside with
    | Some q -> q
    | None -> Alcotest.fail "in-execution settle never ran");
  (* the write during execution left h queued: its partition must still
     be flagged dirty, or the next stabilize would never drain it *)
  check_audit "after in-execution bounded settle" eng;
  Engine.stabilize eng;
  check_audit "after follow-up stabilize" eng;
  checki "stable" 13 (Func.call h ())

(* ------------------------------------------------------------------ *)
(* Spreadsheet error-value surface                                     *)
(* ------------------------------------------------------------------ *)

let test_sheet_poisoned_cell_renders_err () =
  let s = S.create () in
  S.set s "A1" "3";
  S.set s "B1" "=A1*2";
  S.set s "C1" "=B1+1";
  S.set s "D1" "=C1*10";
  checks "clean" "70" (Fmt.str "%a" S.pp_value (S.value_at s "D1"));
  let eng = S.engine s in
  (* every execution attempt now crashes at entry: C1 (the first cell
     forced below) accumulates failures until it poisons *)
  Engine.set_fault_hook eng
    (Some (fun site -> if site = "exec-begin" then raise (Faults.Injected site)));
  S.set s "A1" "4";
  let rec drive n =
    if n = 0 then Alcotest.fail "cell never poisoned"
    else
      match S.value_at s "C1" with
      | S.Error (S.Fault _) -> ()
      | _ | (exception Faults.Injected _) -> drive (n - 1)
  in
  drive 10;
  Engine.set_fault_hook eng None;
  (* the poisoned cell is an error VALUE: it renders, and dependents
     absorb it like any other error instead of crashing *)
  checks "poisoned renders" "#ERR!" (Fmt.str "%a" S.pp_value (S.value_at s "C1"));
  checks "dependent absorbs it" "#ERR!"
    (Fmt.str "%a" S.pp_value (S.value_at s "D1"));
  check_audit "sheet with poisoned cell" eng;
  (* the UI-level recovery action heals the cone *)
  S.clear_fault s (2, 0);
  checks "cleared cell" "9" (Fmt.str "%a" S.pp_value (S.value_at s "C1"));
  checks "dependent healed" "90" (Fmt.str "%a" S.pp_value (S.value_at s "D1"));
  check_audit "sheet healed" eng

(* ------------------------------------------------------------------ *)
(* The injectors themselves                                            *)
(* ------------------------------------------------------------------ *)

let test_seeded_injector_deterministic () =
  let run seed =
    let eng = Engine.create () in
    let a = Var.create eng ~name:"a" 1 in
    let f = Func.create eng ~name:"f" (fun _ () -> Var.get a * 3) in
    let fired = Faults.install_seeded eng ~seed ~rate:0.2 () in
    let out = Buffer.create 64 in
    for v = 1 to 20 do
      (match Var.set a v with () -> () | exception Faults.Injected _ -> ());
      match Func.call f () with
      | r -> Buffer.add_string out (Fmt.str "%d;" r)
      | exception Faults.Injected _ -> Buffer.add_string out "X;"
      | exception Engine.Poisoned _ -> Buffer.add_string out "P;"
    done;
    Faults.clear eng;
    check_audit "seeded run" eng;
    let final =
      match Func.call f () with
      | v -> v
      | exception Engine.Poisoned _ ->
        Engine.clear_poison eng (node_of f ());
        Func.call f ()
    in
    (!fired, Buffer.contents out, final)
  in
  let f1, o1, last1 = run 42 in
  let f2, o2, last2 = run 42 in
  checkb "faults actually fired" true (f1 > 0);
  checki "same fault count" f1 f2;
  checks "same fault schedule" o1 o2;
  checki "same final value" last1 last2;
  checki "converges to the spec value" 60 last1

let test_pick_deterministic_and_valid () =
  let counts = [ ("edge", 10); ("exec-begin", 5); ("mark", 20) ] in
  let p1 = Faults.pick ~seed:7 counts 8 in
  let p2 = Faults.pick ~seed:7 counts 8 in
  checkb "deterministic" true (p1 = p2);
  checki "n points drawn" 8 (List.length p1);
  List.iter
    (fun (site, k) ->
      match List.assoc_opt site counts with
      | None -> Alcotest.failf "picked unknown site %s" site
      | Some n -> checkb "k within the site's count" true (k >= 1 && k <= n))
    p1

let test_count_restores_hook () =
  let eng = Engine.create () in
  let poked = ref false in
  Engine.set_fault_hook eng (Some (fun _ -> poked := true));
  let (), counts =
    Faults.count eng (fun () ->
        let a = Var.create eng ~name:"a" 1 in
        let f = Func.create eng ~name:"f" (fun _ () -> Var.get a) in
        ignore (Func.call f ());
        Var.set a 2;
        ignore (Func.call f ()))
  in
  checkb "counted" true (Faults.total counts > 0);
  checkb "counting did not leak into the real hook" false !poked;
  (* the previous hook is back in place *)
  (match Engine.fault_hook eng with
  | Some h -> h "probe"
  | None -> Alcotest.fail "hook not restored");
  checkb "restored hook runs" true !poked


(* ------------------------------------------------------------------ *)
(* Budgets: deadlines and cooperative cancellation                     *)
(* ------------------------------------------------------------------ *)

(* The cancellation property (ISSUE 7): [Engine.Cancelled] tripping at
   ANY settle step of a transacted batch leaves the observable state
   equal to the pre-batch state (the undo log rewinds it), the audit
   clean, no retry budget charged — and the batch replayable to the
   clean answer. Swept by arming a step cap of k = 1, 2, ... until the
   batch completes uncancelled, so every settle step of the batch gets
   its turn as the cancellation point. *)
let cancel_sweep (make : unit -> Engine.t * (unit -> string) * (unit -> unit))
    () =
  let make () =
    let eng, snap, batch = make () in
    if audit_mode then Engine.set_self_audit eng true;
    (eng, snap, batch)
  in
  let eng0, snap0, batch0 = make () in
  let pre = snap0 () in
  Engine.transact eng0 batch0;
  let post = snap0 () in
  checkb "batch changes the observable state" false (String.equal pre post);
  let rec sweep k =
    if k > 10_000 then Alcotest.fail "budget sweep did not terminate";
    let eng, snap, batch = make () in
    checks "fresh instance starts at pre" pre (snap ());
    let b = Engine.Budget.create ~max_steps:k () in
    match Engine.with_budget eng b (fun () -> Engine.transact eng batch) with
    | () ->
      checks (Fmt.str "uncancelled at k=%d completes to post" k) post (snap ());
      check_audit "after uncancelled batch" eng;
      k - 1
    | exception Engine.Cancelled _ ->
      checkb
        (Fmt.str "budget disarmed after trip at %d" k)
        true
        (Engine.budget eng = None);
      checks (Fmt.str "cancelled at step cap %d rolls back to pre" k) pre
        (snap ());
      check_audit (Fmt.str "after cancellation at %d" k) eng;
      checkb
        (Fmt.str "cancellation at %d charges no retry budget" k)
        true
        (Engine.quarantined eng = []);
      (* the abandoned work must be replayable, not wedged *)
      Engine.transact eng batch;
      checks (Fmt.str "replay after cancellation at %d" k) post (snap ());
      check_audit "after replay" eng;
      sweep (k + 1)
  in
  let cancelled_trips = sweep 1 in
  checkb "sweep exercised at least one cancellation" true (cancelled_trips >= 1)

let diamond_cancel ?scheduling ~strategy () =
  let eng = Engine.create ?scheduling ~default_strategy:strategy () in
  let a = Var.create eng ~name:"a" 2 in
  let b = Var.create eng ~name:"b" 5 in
  let z = Var.create eng ~name:"z" 100 in
  let f = Func.create eng ~name:"f" (fun _ () -> Var.get a + Var.get b) in
  let g = Func.create eng ~name:"g" (fun _ () -> Var.get a * Var.get b) in
  let top =
    Func.create eng ~name:"top" (fun _ () -> Func.call f () + Func.call g ())
  in
  let other = Func.create eng ~name:"other" (fun _ () -> Var.get z - 1) in
  let snap () =
    Engine.stabilize eng;
    Fmt.str "%d/%d" (Func.call top ()) (Func.call other ())
  in
  ignore (snap () : string);
  let batch () =
    Var.set a 3;
    Var.set b (-4);
    Var.set z 7
  in
  (eng, snap, batch)

let sheet_cancel ?scheduling () =
  let s = S.create ?scheduling () in
  S.set s "A1" "4";
  S.set s "A2" "=A1*A1";
  S.set s "A3" "=A2+A1";
  S.set s "B1" "=SUM(A1:A3)";
  S.set s "B2" "=B1/A1";
  let snap () = S.render s in
  ignore (snap () : string);
  let batch () =
    S.set s "A1" "2";
    S.set s "A3" "=SQRT(A2+5)";
    S.set s "B1" "=A2+A3"
  in
  (S.engine s, snap, batch)

let avl_cancel ?scheduling () =
  let eng = Engine.create ?scheduling () in
  let t = Avl.create eng in
  List.iter (fun k -> Avl.insert t k) [ 5; 2; 8; 1; 9 ];
  Avl.rebalance t;
  let snap () =
    Avl.rebalance t;
    Fmt.str "%a/h%d/%b%b"
      Fmt.(Dump.list int)
      (Avl.to_list t) (Avl.height t)
      (Avl.is_ordered (Avl.root t))
      (Avl.is_balanced (Avl.root t))
  in
  ignore (snap () : string);
  let batch () =
    Avl.insert t 3;
    Avl.insert t 7;
    Avl.delete t 2
  in
  (eng, snap, batch)

let test_budget_deadline_expired () =
  let eng = Engine.create ~default_strategy:Engine.Eager () in
  let a = Var.create eng ~name:"a" 1 in
  let f = Func.create eng ~name:"f" (fun _ () -> Var.get a + 1) in
  checki "primed" 2 (Func.call f ());
  let b = Engine.Budget.create ~deadline:(Unix.gettimeofday () -. 1.0) () in
  (match
     Engine.with_budget eng b (fun () ->
         Engine.transact eng (fun () -> Var.set a 41))
   with
  | () -> Alcotest.fail "expected Cancelled"
  | exception Engine.Cancelled msg ->
    checkb "reason names the deadline" true
      (String.length msg >= 8 && String.sub msg 0 8 = "deadline"));
  checkb "budget disarmed" true (Engine.budget eng = None);
  checki "write rolled back" 2 (Func.call f ());
  check_audit "after deadline trip" eng

let test_budget_cancel_flag () =
  let eng = Engine.create ~default_strategy:Engine.Eager () in
  let a = Var.create eng ~name:"a" 1 in
  let f = Func.create eng ~name:"f" (fun _ () -> Var.get a * 10) in
  checki "primed" 10 (Func.call f ());
  let b = Engine.Budget.create () in
  checkb "not yet cancelled" false (Engine.Budget.cancelled b);
  Engine.Budget.cancel b;
  checkb "flag latched" true (Engine.Budget.cancelled b);
  (match
     Engine.with_budget eng b (fun () ->
         Engine.transact eng (fun () -> Var.set a 5))
   with
  | () -> Alcotest.fail "expected Cancelled"
  | exception Engine.Cancelled _ -> ());
  checki "write rolled back" 10 (Func.call f ());
  check_audit "after cancel flag" eng

let test_budget_counts_steps () =
  let eng = Engine.create ~default_strategy:Engine.Eager () in
  let a = Var.create eng ~name:"a" 1 in
  let f = Func.create eng ~name:"f" (fun _ () -> Var.get a + 1) in
  let g = Func.create eng ~name:"g" (fun _ () -> Func.call f () * 2) in
  checki "primed" 4 (Func.call g ());
  let b = Engine.Budget.create ~max_steps:1_000 () in
  Engine.with_budget eng b (fun () ->
      Engine.transact eng (fun () -> Var.set a 10));
  checkb "steps were charged" true (Engine.Budget.steps_used b > 0);
  checki "batch committed" 22 (Func.call g ())

let () =
  Alcotest.run "faults"
    [
      ( "sweep",
        [
          Alcotest.test_case "diamond (demand)" `Quick
            (sweep (diamond ~strategy:Engine.Demand ~partitioning:false));
          Alcotest.test_case "diamond (eager, partitioned)" `Quick
            (sweep (diamond ~strategy:Engine.Eager ~partitioning:true));
          Alcotest.test_case "spreadsheet" `Quick (sweep (sheet_workload ?scheduling:None));
          Alcotest.test_case "avl" `Quick (sweep (avl_workload ?scheduling:None));
          Alcotest.test_case "attribute grammar" `Quick
            (sweep (attrgram_workload ?scheduling:None));
          (* The same per-poke sweeps with the parallel evaluator on 4
             domains: every fault site must fire, recover, and converge
             when pokes originate from worker domains. *)
          Alcotest.test_case "diamond (eager, parallel-4)" `Quick
            (sweep
               (diamond ~scheduling:par4 ~strategy:Engine.Eager
                  ~partitioning:false));
          Alcotest.test_case "diamond (eager, partitioned, parallel-4)" `Quick
            (sweep
               (diamond ~scheduling:par4 ~strategy:Engine.Eager
                  ~partitioning:true));
          Alcotest.test_case "spreadsheet (parallel-4)" `Quick
            (sweep (sheet_workload ~scheduling:par4));
          Alcotest.test_case "avl (parallel-4)" `Quick
            (sweep (avl_workload ~scheduling:par4));
          Alcotest.test_case "attribute grammar (parallel-4)" `Quick
            (sweep (attrgram_workload ~scheduling:par4));
        ] );
      ( "quarantine",
        [
          Alcotest.test_case "retry then poison" `Quick
            test_quarantine_then_poison;
          Alcotest.test_case "clear_poison re-quarantines with a fresh budget"
            `Quick test_clear_poison_requarantines;
          Alcotest.test_case "poison propagates without charge" `Quick
            test_poison_propagates_without_charge;
          Alcotest.test_case "stabilize is total and retries" `Quick
            test_stabilize_total_and_retry;
          Alcotest.test_case "pre-body fault is recorded" `Quick
            test_prebody_fault_is_recorded;
        ] );
      ( "transact",
        [
          Alcotest.test_case "commit" `Quick test_transact_commit;
          Alcotest.test_case "rollback on abort" `Quick test_transact_rollback;
          Alcotest.test_case "rollback on injected settle fault" `Quick
            test_transact_rollback_on_injected_settle_fault;
          Alcotest.test_case "nesting rejected" `Quick
            test_transact_nesting_rejected;
        ] );
      ( "budget",
        [
          Alcotest.test_case "cancel sweep: diamond (demand)" `Quick
            (cancel_sweep (diamond_cancel ~strategy:Engine.Demand));
          Alcotest.test_case "cancel sweep: diamond (eager)" `Quick
            (cancel_sweep (diamond_cancel ~strategy:Engine.Eager));
          Alcotest.test_case "cancel sweep: diamond (eager, parallel-4)" `Quick
            (cancel_sweep
               (diamond_cancel ~scheduling:par4 ~strategy:Engine.Eager));
          Alcotest.test_case "cancel sweep: spreadsheet" `Quick
            (cancel_sweep (sheet_cancel ?scheduling:None));
          Alcotest.test_case "cancel sweep: spreadsheet (parallel-4)" `Quick
            (cancel_sweep (sheet_cancel ~scheduling:par4));
          Alcotest.test_case "cancel sweep: avl" `Quick
            (cancel_sweep (avl_cancel ?scheduling:None));
          Alcotest.test_case "expired deadline trips and rolls back" `Quick
            test_budget_deadline_expired;
          Alcotest.test_case "cancel flag preempts the settle" `Quick
            test_budget_cancel_flag;
          Alcotest.test_case "steps are charged to the budget" `Quick
            test_budget_counts_steps;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "settle steps degrade" `Quick
            test_settle_watchdog_degrades;
          Alcotest.test_case "stack depth" `Quick test_stack_depth_watchdog;
          Alcotest.test_case "stack depth is structural" `Quick
            test_stack_depth_watchdog_structural;
          Alcotest.test_case "bounded settle skips stay dirty" `Quick
            test_settle_bounded_on_stack_skip;
        ] );
      ( "spreadsheet",
        [
          Alcotest.test_case "poisoned cell is an error value" `Quick
            test_sheet_poisoned_cell_renders_err;
        ] );
      ( "injectors",
        [
          Alcotest.test_case "seeded injector is deterministic" `Quick
            test_seeded_injector_deterministic;
          Alcotest.test_case "pick is deterministic and valid" `Quick
            test_pick_deterministic_and_valid;
          Alcotest.test_case "count restores the hook" `Quick
            test_count_restores_hook;
        ] );
    ]
