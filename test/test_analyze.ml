(* Tests for the Analyze library: the interprocedural effect analysis
   (direct and transitive may-read/may-write sets, dispatch-aware), and
   the incremental-correctness lint rules ALF001–ALF006 — one positive
   fixture per rule, plus the blanket property that every built-in
   sample is warning- and error-free. *)

module P = Lang.Parser
module Tc = Lang.Typecheck
module Cg = Analyze.Callgraph
module E = Analyze.Effects
module Diag = Analyze.Diag
module Lint = Analyze.Lint

let checkb = Alcotest.(check bool)

let contains sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let compile src =
  match P.parse src with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok m -> (
    match Tc.check m with
    | Ok env -> env
    | Error es ->
      Alcotest.failf "typecheck failed: %a"
        Fmt.(list ~sep:semi Tc.pp_error)
        es)

let locs ls = E.Locs.of_list ls

let check_locs name expected actual =
  checks name
    (Fmt.str "%a" E.pp_locs (locs expected))
    (Fmt.str "%a" E.pp_locs actual)

(* ------------------------------------------------------------------ *)
(* Effects                                                             *)
(* ------------------------------------------------------------------ *)

(* Chain: Top reads g1 directly, calls Mid which writes g2, which calls
   Leaf reading field f and the arrays pool. Locals/params contribute
   nothing. *)
let effects_src =
  {|MODULE M;
    TYPE T = OBJECT f : INTEGER; END;
    VAR g1, g2 : INTEGER;
    VAR o : T;
    VAR arr : ARRAY [1..4] OF INTEGER;
    PROCEDURE Leaf(x : INTEGER) : INTEGER =
    VAR tmp : INTEGER;
    BEGIN
      tmp := o.f;
      RETURN tmp + arr[x]
    END Leaf;
    PROCEDURE Mid() : INTEGER =
    BEGIN
      g2 := 1;
      RETURN Leaf(2)
    END Mid;
    PROCEDURE Top() : INTEGER =
    BEGIN
      RETURN g1 + Mid()
    END Top;
    BEGIN
      o := NEW(T);
      o.f := 7;
      arr[2] := 5;
      g1 := 1;
      Print(Top(), "\n")
    END M.|}

let test_direct_effects () =
  let env = compile effects_src in
  let eff = E.compute env in
  let d p = E.direct eff p in
  check_locs "Leaf direct reads"
    [ E.Global "o"; E.Global "arr"; E.Field "f"; E.Arrays ]
    (d "Leaf").E.reads;
  check_locs "Leaf direct writes" [] (d "Leaf").E.writes;
  check_locs "Mid direct reads" [] (d "Mid").E.reads;
  check_locs "Mid direct writes" [ E.Global "g2" ] (d "Mid").E.writes;
  check_locs "Top direct reads" [ E.Global "g1" ] (d "Top").E.reads;
  (* the module body: initializers + main statements *)
  (* arr[2] := 5 writes the element pool and READS the array variable *)
  check_locs "<main> direct writes"
    [ E.Global "o"; E.Global "g1"; E.Field "f"; E.Arrays ]
    (d E.main_name).E.writes

let test_summary_effects () =
  let env = compile effects_src in
  let eff = E.compute env in
  let s p = E.summary eff p in
  check_locs "Top transitive reads"
    [ E.Global "g1"; E.Global "o"; E.Global "arr"; E.Field "f"; E.Arrays ]
    (s "Top").E.reads;
  check_locs "Top transitive writes" [ E.Global "g2" ] (s "Top").E.writes;
  check_locs "<main> transitive writes"
    [ E.Global "o"; E.Global "g1"; E.Global "g2"; E.Field "f"; E.Arrays ]
    (s E.main_name).E.writes

(* Method calls contribute every dispatch target's summary. *)
let dispatch_src =
  {|MODULE M;
    VAR ga, gb : INTEGER;
    VAR it : A;
    TYPE A = OBJECT METHODS (*MAINTAINED*) v() : INTEGER := VA; END;
    TYPE B = A OBJECT OVERRIDES v := VB; END;
    PROCEDURE VA(s : A) : INTEGER = BEGIN RETURN ga END VA;
    PROCEDURE VB(s : A) : INTEGER = BEGIN RETURN gb END VB;
    PROCEDURE Probe(x : A) : INTEGER = BEGIN RETURN x.v() END Probe;
    BEGIN
      it := NEW(B);
      ga := 1; gb := 2;
      Print(Probe(it), "\n")
    END M.|}

let test_dispatch_effects () =
  let env = compile dispatch_src in
  let eff = E.compute env in
  (* a static-A receiver may dispatch to VA or VB: both globals appear *)
  check_locs "Probe reads both targets' globals"
    [ E.Global "ga"; E.Global "gb" ]
    (E.summary eff "Probe").E.reads;
  let targets =
    Cg.dispatch_targets env "A" "v"
    |> List.map (fun (mi : Tc.method_info) -> mi.mi_impl)
    |> List.sort compare
  in
  checks "dispatch targets" "VA VB" (String.concat " " targets)

let test_fixpoint_recursion () =
  (* mutual recursion converges and both procs see both globals *)
  let env =
    compile
      {|MODULE M;
        VAR a, b : INTEGER;
        PROCEDURE Even(n : INTEGER) : INTEGER =
        BEGIN
          IF n = 0 THEN RETURN a END;
          RETURN Odd(n - 1)
        END Even;
        PROCEDURE Odd(n : INTEGER) : INTEGER =
        BEGIN
          IF n = 0 THEN RETURN b END;
          RETURN Even(n - 1)
        END Odd;
        BEGIN
          a := 1; b := 2;
          Print(Even(4), "\n")
        END M.|}
  in
  let eff = E.compute env in
  check_locs "Even sees both" [ E.Global "a"; E.Global "b" ]
    (E.summary eff "Even").E.reads;
  check_locs "Odd sees both" [ E.Global "a"; E.Global "b" ]
    (E.summary eff "Odd").E.reads

(* ------------------------------------------------------------------ *)
(* Lint rules: one positive fixture each                               *)
(* ------------------------------------------------------------------ *)

let rules_of ds = List.map (fun d -> d.Diag.rule) ds |> List.sort_uniq compare

let lint src = Lint.run (compile src)

let find_rule code ds =
  match List.find_opt (fun d -> d.Diag.rule = code) ds with
  | Some d -> d
  | None ->
    Alcotest.failf "expected a %s finding, got [%s]" code
      (String.concat "; " (rules_of ds))

let test_alf001_unsound_unchecked () =
  let ds =
    lint
      {|MODULE M;
        VAR base, cache : INTEGER;
        VAR w : W;
        TYPE W = OBJECT
        METHODS
          (*MAINTAINED*) total() : INTEGER := Total;
          (*MAINTAINED*) probe() : INTEGER := ProbeIt;
        END;
        PROCEDURE Peek() : INTEGER = BEGIN RETURN cache END Peek;
        PROCEDURE Total(s : W) : INTEGER =
        VAR t : INTEGER;
        BEGIN t := base * 2; cache := t; RETURN t END Total;
        PROCEDURE ProbeIt(s : W) : INTEGER =
        BEGIN RETURN (*UNCHECKED*) Peek() END ProbeIt;
        BEGIN
          w := NEW(W);
          base := 10;
          Print(w.total(), " ", w.probe(), "\n")
        END M.|}
  in
  let d = find_rule "ALF001" ds in
  checkb "warning severity" true (d.Diag.severity = Diag.Warning);
  checkb "anchored at the UNCHECKED expr" true (d.Diag.pos.Lang.Ast.line = 14);
  checkb "names the pruned global" true
    (contains "cache" d.Diag.message)

let test_alf002_self_invalidation () =
  let ds =
    lint
      {|MODULE M;
        VAR acc : INTEGER;
        VAR w : W;
        TYPE W = OBJECT METHODS (*MAINTAINED*) bump() : INTEGER := Bump; END;
        PROCEDURE Bump(s : W) : INTEGER =
        BEGIN acc := acc + 1; RETURN acc END Bump;
        BEGIN
          w := NEW(W);
          acc := 0;
          Print(w.bump(), "\n")
        END M.|}
  in
  let d = find_rule "ALF002" ds in
  checkb "names Bump" true (contains "Bump" d.Diag.message)

let test_alf003_identity_cycle () =
  let ds =
    lint
      {|MODULE M;
        VAR g : INTEGER;
        (*CACHED*) PROCEDURE Ping(n : INTEGER) : INTEGER =
        BEGIN RETURN Pong(n) END Ping;
        (*CACHED*) PROCEDURE Pong(n : INTEGER) : INTEGER =
        BEGIN RETURN Ping(n) END Pong;
        BEGIN
          g := 1;
          Print(Ping(g), "\n")
        END M.|}
  in
  let d = find_rule "ALF003" ds in
  checkb "error severity" true (d.Diag.severity = Diag.Error);
  (* both edges of the 2-cycle are reported *)
  checki "two cycle edges" 2
    (List.length (List.filter (fun d -> d.Diag.rule = "ALF003") ds))

let test_alf003_changing_args_ok () =
  (* ordinary shrinking recursion (Fib-style) must NOT be flagged *)
  let ds = lint Lang.Samples.fib_cached in
  checkb "no ALF003 on fib" false (List.mem "ALF003" (rules_of ds))

let test_alf004_unreachable () =
  let ds =
    lint
      {|MODULE M;
        VAR g : INTEGER;
        (*CACHED*) PROCEDURE Dead(n : INTEGER) : INTEGER =
        BEGIN RETURN n + g END Dead;
        BEGIN
          g := 1;
          Print(g, "\n")
        END M.|}
  in
  let d = find_rule "ALF004" ds in
  checkb "names Dead" true
    (contains "Dead" d.Diag.message);
  checkb "anchored at the declaration" true (d.Diag.pos.Lang.Ast.line = 3)

let test_alf005_dead_dependency () =
  let ds = lint Lang.Samples.unchecked_lookup in
  let infos = List.filter (fun d -> d.Diag.rule = "ALF005") ds in
  checki "p1 and p3 are dead dependencies" 2 (List.length infos);
  List.iter
    (fun d -> checkb "info severity" true (d.Diag.severity = Diag.Info))
    infos

let test_alf006_pruned_write () =
  let ds =
    lint
      {|MODULE M;
        VAR a, b : INTEGER;
        VAR w : W;
        TYPE W = OBJECT METHODS (*MAINTAINED*) go() : INTEGER := Go; END;
        PROCEDURE Sneak() : INTEGER = BEGIN a := a + 1; RETURN a END Sneak;
        PROCEDURE Go(s : W) : INTEGER =
        VAR t : INTEGER;
        BEGIN
          t := (*UNCHECKED*) Sneak();
          RETURN a + b
        END Go;
        BEGIN
          w := NEW(W);
          a := 1; b := 2;
          Print(w.go(), "\n")
        END M.|}
  in
  let d = find_rule "ALF006" ds in
  checkb "names the written global" true
    (contains "global:a" d.Diag.message)

let test_samples_clean () =
  List.iter
    (fun (name, src) ->
      let bad =
        List.filter
          (fun d -> Diag.severity_rank d.Diag.severity > 0)
          (lint src)
      in
      checki (name ^ " has no warnings/errors") 0 (List.length bad))
    Lang.Samples.all

(* ------------------------------------------------------------------ *)
(* Call graph: identity-call classification and reachability           *)
(* ------------------------------------------------------------------ *)

let test_identity_classification () =
  let env =
    compile
      {|MODULE M;
        VAR g : INTEGER;
        PROCEDURE F(n, m : INTEGER) : INTEGER =
        BEGIN
          IF n = 0 THEN RETURN m END;
          IF n = 1 THEN RETURN F(n, m) END;
          IF n = 2 THEN RETURN F(m, n) END;
          RETURN F(n - 1, m)
        END F;
        BEGIN
          g := 3;
          Print(F(g, 1), "\n")
        END M.|}
  in
  let sites = Cg.call_sites env in
  let f_sites =
    List.filter (fun (cs : Cg.call_site) -> cs.Cg.cs_caller = "F") sites
  in
  checki "three recursive sites" 3 (List.length f_sites);
  let identities =
    List.map (fun (cs : Cg.call_site) -> cs.Cg.cs_identity) f_sites
  in
  (* F(n, m) is identity; F(m, n) swaps; F(n - 1, m) changes an arg *)
  checks "identity flags" "true false false"
    (String.concat " " (List.map string_of_bool identities))

let test_reachability () =
  let env = compile effects_src in
  let callees = Cg.callees env in
  let from_main = Cg.reachable callees [ Cg.main_name ] in
  List.iter
    (fun p -> checkb (p ^ " reachable from main") true (Hashtbl.mem from_main p))
    [ "Top"; "Mid"; "Leaf" ];
  let from_mid = Cg.reachable callees [ "Mid" ] in
  checkb "Top not reachable from Mid" false (Hashtbl.mem from_mid "Top");
  checkb "Leaf reachable from Mid" true (Hashtbl.mem from_mid "Leaf")

let () =
  Alcotest.run "analyze"
    [
      ( "effects",
        [
          Alcotest.test_case "direct sets" `Quick test_direct_effects;
          Alcotest.test_case "transitive summaries" `Quick
            test_summary_effects;
          Alcotest.test_case "dispatch targets" `Quick test_dispatch_effects;
          Alcotest.test_case "recursive fixpoint" `Quick
            test_fixpoint_recursion;
        ] );
      ( "lint",
        [
          Alcotest.test_case "ALF001 unsound UNCHECKED" `Quick
            test_alf001_unsound_unchecked;
          Alcotest.test_case "ALF002 self-invalidation" `Quick
            test_alf002_self_invalidation;
          Alcotest.test_case "ALF003 identity cycle" `Quick
            test_alf003_identity_cycle;
          Alcotest.test_case "ALF003 spares real recursion" `Quick
            test_alf003_changing_args_ok;
          Alcotest.test_case "ALF004 unreachable" `Quick
            test_alf004_unreachable;
          Alcotest.test_case "ALF005 dead dependency" `Quick
            test_alf005_dead_dependency;
          Alcotest.test_case "ALF006 pruned write" `Quick
            test_alf006_pruned_write;
          Alcotest.test_case "samples are clean" `Quick test_samples_clean;
        ] );
      ( "callgraph",
        [
          Alcotest.test_case "identity call sites" `Quick
            test_identity_classification;
          Alcotest.test_case "reachability" `Quick test_reachability;
        ] );
    ]
