(* Randomized end-to-end tests.

   - Random well-typed expression programs: the conventional interpreter
     must agree with a plain OCaml evaluation oracle, and every generated
     module must round-trip through the pretty-printer and parser.
   - Random mutator schedules over a maintained-property program family:
     Theorem 5.1 checked by construction (Alphonse execution output equals
     conventional execution output) under all strategy/partitioning
     combinations.
   - Oracle tests for the remaining substrate pieces: the closure-based
     hash table against Stdlib.Hashtbl, and the order-maintenance list
     under interleaved inserts and deletes. *)

open Lang.Ast
module P = Lang.Parser
module Tc = Lang.Typecheck
module Interp = Lang.Interp
module Incr = Transform.Incr_interp
module Engine = Alphonse.Engine


(* ------------------------------------------------------------------ *)
(* Random well-typed integer expressions with an evaluation oracle     *)
(* ------------------------------------------------------------------ *)

let global_names = [| "g0"; "g1"; "g2"; "g3" |]
let global_values = [| 3; -7; 11; 2 |]

(* generator of (AST, oracle value) pairs *)
let rec int_expr_gen depth =
  let open QCheck.Gen in
  if depth = 0 then
    oneof
      [
        map (fun n -> (mk_expr (Int n), n)) (int_range (-50) 50);
        map
          (fun i ->
            (mk_expr (Var global_names.(i)), global_values.(i)))
          (int_bound 3);
      ]
  else
    let sub = int_expr_gen (depth - 1) in
    frequency
      [
        (1, int_expr_gen 0);
        ( 3,
          map3
            (fun op (ea, va) (eb, vb) ->
              let v =
                match op with
                | Add -> va + vb
                | Sub -> va - vb
                | Mul -> va * vb
                | _ -> assert false
              in
              (mk_expr (Binop (op, ea, eb)), v))
            (oneofl [ Add; Sub; Mul ])
            sub sub );
        (1, map (fun (e, v) -> (mk_expr (Unop (Neg, e)), -v)) sub);
        ( 1,
          (* IF cond THEN a ELSE b END, expressed as a value via a helper
             procedure is heavy; instead encode the conditional with a
             comparison feeding a multiply: (a < b) is not first-class
             int, so wrap via the Choose procedure declared below *)
          map3
            (fun (ec, vc) (ea, va) (eb, vb) ->
              let cond = mk_expr (Binop (Gt, ec, mk_expr (Int 0))) in
              ( mk_expr (Call (Cproc "Choose", [ cond; ea; eb ])),
                if vc > 0 then va else vb ))
            sub sub sub );
      ]

let module_of_expr e =
  {
    modname = "Fuzz";
    types = [];
    globals =
      Array.to_list
        (Array.mapi
           (fun i g ->
             {
               gname = g;
               gty = Tint;
               ginit = Some (mk_expr (Int global_values.(i)));
               gpos = no_pos;
             })
           global_names);
    procs =
      [
        {
          pname = "Choose";
          params = [ ("c", Tbool); ("a", Tint); ("b", Tint) ];
          ret = Some Tint;
          locals = [];
          body =
            [
              mk_stmt
                (If
                   ( [ (mk_expr (Var "c"), [ mk_stmt (Return (Some (mk_expr (Var "a")))) ]) ],
                     [ mk_stmt (Return (Some (mk_expr (Var "b")))) ] ));
            ];
          ppragma = None;
          ppos = no_pos;
        };
      ];
    main =
      [
        mk_stmt (Call_stmt (mk_expr (Call (Cproc "Print", [ e ]))));
      ];
  }

let prop_expr_oracle =
  QCheck.Test.make ~name:"random expressions: interpreter = oracle" ~count:200
    (QCheck.make
       ~print:(fun (e, v) ->
         Fmt.str "%a = %d" (Lang.Pretty.pp_expr ~marks:false 0) e v)
       (int_expr_gen 4))
    (fun (e, oracle) ->
      let m = module_of_expr e in
      match Tc.check m with
      | Error _ -> false
      | Ok env -> (
        let out = Interp.run ~fuel:1_000_000 env in
        match out.Interp.error with
        | Some _ -> false
        | None -> out.Interp.output = string_of_int oracle))

let prop_module_roundtrip =
  QCheck.Test.make ~name:"random modules: print/parse round trip" ~count:200
    (QCheck.make
       ~print:(fun (e, _) -> Fmt.str "%a" (Lang.Pretty.pp_expr ~marks:false 0) e)
       (int_expr_gen 4))
    (fun (e, _) ->
      let m = module_of_expr e in
      let printed = Lang.Pretty.to_string m in
      match P.parse printed with
      | Error _ -> false
      | Ok m2 -> Lang.Pretty.to_string m2 = printed)

(* ------------------------------------------------------------------ *)
(* Random mutator schedules: Theorem 5.1 by construction               *)
(* ------------------------------------------------------------------ *)

(* CI audit mode: with ALPHONSE_AUDIT=1 in the environment every
   incremental execution below runs with the per-step invariant auditor
   enabled — a metadata incoherence surfaces as a run error and fails the
   property. *)
let audit_mode = Sys.getenv_opt "ALPHONSE_AUDIT" = Some "1"

type op = Set of int * int | Query | Show of int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map2 (fun i v -> Set (i, v)) (int_bound 3) (int_range (-20) 20));
        (2, return Query);
        (1, map (fun i -> Show i) (int_bound 3));
      ])

let print_op = function
  | Set (i, v) -> Fmt.str "g%d := %d" i v
  | Query -> "query"
  | Show i -> Fmt.str "show g%d" i

(* the program family: a maintained total over the four globals, driven
   by a random mutator *)
let module_of_schedule ops =
  let total_body =
    (* g0 + 2*g1 + 3*g2 - g3 *)
    let g i = mk_expr (Var global_names.(i)) in
    let ( +! ) a b = mk_expr (Binop (Add, a, b)) in
    let ( -! ) a b = mk_expr (Binop (Sub, a, b)) in
    let ( *! ) a b = mk_expr (Binop (Mul, a, b)) in
    g 0 +! (mk_expr (Int 2) *! g 1) +! ((mk_expr (Int 3) *! g 2) -! g 3)
  in
  let main =
    mk_stmt (Assign (mk_expr (Var "calc"), mk_expr (New "Calc")))
    :: List.map
         (fun op ->
           match op with
           | Set (i, v) ->
             mk_stmt
               (Assign (mk_expr (Var global_names.(i)), mk_expr (Int v)))
           | Query ->
             mk_stmt
               (Call_stmt
                  (mk_expr
                     (Call
                        ( Cproc "Print",
                          [
                            mk_expr
                              (Call
                                 ( Cmethod (mk_expr (Var "calc"), "total"),
                                   [] ));
                            mk_expr (Text " ");
                          ] ))))
           | Show i ->
             mk_stmt
               (Call_stmt
                  (mk_expr
                     (Call
                        ( Cproc "Print",
                          [ mk_expr (Var global_names.(i)); mk_expr (Text "|") ]
                        )))))
         ops
  in
  {
    modname = "Schedule";
    types =
      [
        {
          tname = "Calc";
          super = None;
          fields = [];
          methods =
            [
              {
                mname = "total";
                mparams = [];
                mret = Some Tint;
                mimpl = "Total";
                mpragma = Some (Maintained S_default);
                mpos = no_pos;
              };
            ];
          overrides = [];
          tpos = no_pos;
        };
      ];
    globals =
      { gname = "calc"; gty = Tobj "Calc"; ginit = None; gpos = no_pos }
      :: Array.to_list
           (Array.map
              (fun g -> { gname = g; gty = Tint; ginit = None; gpos = no_pos })
              global_names);
    procs =
      [
        {
          pname = "Total";
          params = [ ("s", Tobj "Calc") ];
          ret = Some Tint;
          locals = [];
          body = [ mk_stmt (Return (Some total_body)) ];
          ppragma = None;
          ppos = no_pos;
        };
      ];
    main;
  }

let prop_schedule_theorem_5_1 =
  QCheck.Test.make ~name:"random schedules: Theorem 5.1" ~count:100
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map print_op ops))
       QCheck.Gen.(list_size (int_range 1 40) op_gen))
    (fun ops ->
      let m = module_of_schedule ops in
      match Tc.check m with
      | Error _ -> false
      | Ok env -> (
        let conv = Interp.run ~fuel:10_000_000 env in
        match conv.Interp.error with
        | Some _ -> false
        | None ->
          List.for_all
            (fun (strategy, partitioning) ->
              let inc =
                Incr.run ~fuel:10_000_000 ~default_strategy:strategy
                  ~partitioning ~audit:audit_mode env
              in
              inc.Incr.error = None && inc.Incr.output = conv.Interp.output)
            [
              (Engine.Demand, false);
              (Engine.Eager, false);
              (Engine.Demand, true);
              (Engine.Eager, true);
            ]))

(* ------------------------------------------------------------------ *)
(* Substrate oracles                                                   *)
(* ------------------------------------------------------------------ *)

let prop_htbl_oracle =
  QCheck.Test.make ~name:"closure hashtable = Stdlib.Hashtbl" ~count:200
    QCheck.(list (pair (int_bound 40) (option (int_bound 1000))))
    (fun ops ->
      let t =
        Alphonse.Htbl.create ~hash:Hashtbl.hash ~equal:Int.equal ()
      in
      let oracle : (int, int) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (k, op) ->
          match op with
          | Some v ->
            (* add-if-absent semantics, like the argument tables *)
            if not (Hashtbl.mem oracle k) then begin
              Alphonse.Htbl.add t k v;
              Hashtbl.replace oracle k v
            end
          | None ->
            Alphonse.Htbl.remove t k;
            Hashtbl.remove oracle k)
        ops;
      Alphonse.Htbl.length t = Hashtbl.length oracle
      && Hashtbl.fold
           (fun k v acc -> acc && Alphonse.Htbl.find t k = Some v)
           oracle true
      && Alphonse.Htbl.fold
           (fun k v acc -> acc && Hashtbl.find_opt oracle k = Some v)
           t true)

let prop_order_list_with_deletes =
  QCheck.Test.make ~name:"order list under inserts and deletes" ~count:100
    QCheck.(list (pair (int_bound 99) bool))
    (fun ops ->
      let module Ol = Depgraph.Order_list in
      let t = Ol.create () in
      (* reference: items in order; index 0 is the undeletable base *)
      let items = ref [ Ol.base t ] in
      List.iter
        (fun (i, delete) ->
          let n = List.length !items in
          if delete && n > 1 then begin
            let idx = 1 + (i mod (n - 1)) in
            Ol.delete (List.nth !items idx);
            items := List.filteri (fun j _ -> j <> idx) !items
          end
          else begin
            let idx = i mod n in
            let fresh = Ol.insert_after (List.nth !items idx) in
            let rec splice k = function
              | [] -> [ fresh ]
              | x :: rest ->
                if k = 0 then x :: fresh :: rest else x :: splice (k - 1) rest
            in
            items := splice idx !items
          end)
        ops;
      Ol.validate t;
      let arr = Array.of_list !items in
      let ok = ref (Ol.length t = Array.length arr) in
      for k = 0 to Array.length arr - 2 do
        if not (Ol.lt arr.(k) arr.(k + 1)) then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* JSON printer/parser round trip                                      *)
(* ------------------------------------------------------------------ *)

(* The durability layer trusts [Json.of_string (Json.to_string j) = j]
   for every value it frames into the journal or checksums into a
   snapshot — so the generator leans on the nasty cases: control
   characters and quotes in strings (escaping), integer edges, deep
   nesting, empty containers. Numbers are restricted to values the
   float-based printer represents exactly; the printer maps non-finite
   numbers to [null] by design, so they are generated as [Null]. *)
let json_gen =
  let open QCheck.Gen in
  let module J = Alphonse.Json in
  let str_gen =
    let char_gen =
      frequency
        [
          (6, char_range 'a' 'z');
          (2, oneofl [ '"'; '\\'; '/'; '\n'; '\t'; '\r'; '\b'; '\012' ]);
          (1, map Char.chr (int_range 0 31));
          (1, map Char.chr (int_range 32 126));
        ]
    in
    string_size ~gen:char_gen (int_bound 12)
  in
  let num_gen =
    frequency
      [
        (3, map float_of_int (int_range (-1000) 1000));
        (1,
         oneofl
           [
             0.; -0.; 1.5; -3.25; 1e-3; 1e10; 4503599627370496.;
             (* 2^52: the float-exact integer edge *)
             -4503599627370496.; infinity; neg_infinity; nan;
           ]);
      ]
  in
  (* non-finite numbers print as null; generate what survives a trip *)
  let num_gen =
    map (fun x -> if Float.is_finite x then J.Num x else J.Null) num_gen
  in
  fix
    (fun self depth ->
      if depth = 0 then
        frequency
          [
            (1, return J.Null);
            (1, map (fun b -> J.Bool b) bool);
            (2, num_gen);
            (2, map (fun s -> J.Str s) str_gen);
          ]
      else
        frequency
          [
            (2, map (fun s -> J.Str s) str_gen);
            (1, num_gen);
            (2,
             map (fun l -> J.Arr l) (list_size (int_bound 4) (self (depth - 1))));
            (2,
             map
               (fun l -> J.Obj l)
               (list_size (int_bound 4)
                  (pair str_gen (self (depth - 1)))));
          ])
    4

let prop_json_roundtrip =
  QCheck.Test.make ~name:"json: print/parse round trip" ~count:500
    (QCheck.make
       ~print:(fun j -> Alphonse.Json.to_string j)
       json_gen)
    (fun j ->
      let module J = Alphonse.Json in
      match J.of_string (J.to_string j) with
      | j' -> j' = j && J.to_string j' = J.to_string j
      | exception J.Parse_error e ->
        QCheck.Test.fail_reportf "parse back failed: %s on %s" e
          (J.to_string j))

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "fuzz"
    [
      ( "lang",
        qsuite
          [ prop_expr_oracle; prop_module_roundtrip; prop_schedule_theorem_5_1 ]
      );
      ("substrate", qsuite [ prop_htbl_oracle; prop_order_list_with_deletes ]);
      ("json", qsuite [ prop_json_roundtrip ]);
    ]
