The alphonsec driver, end to end. The binary is materialized by the cram
dependency declaration.

  $ alphonsec() { ../bin/alphonsec.exe "$@"; }

Built-in samples are listed and accepted in place of file paths:

  $ alphonsec samples
  height_tree
  avl
  fib_cached
  sums_maintained
  unchecked_lookup
  pragma_zoo
  spreadsheet
  sieve
  shortest_path

  $ alphonsec check height_tree
  module HeightTree: 2 type(s), 4 procedure(s), 2 global(s) — OK

Conventional and Alphonse executions agree (Theorem 5.1), with the
speedup reported:

  $ alphonsec run sums_maintained 2>/dev/null
  6
  14
  14

  $ alphonsec run sums_maintained --conventional 2>/dev/null
  6
  14
  14

Injected crashes (--fault-seed) are absorbed — quarantine and retry leave
the output unchanged — and --audit keeps the invariant auditor on after
every settle step:

  $ alphonsec run sums_maintained --fault-seed 10 --audit 2>/dev/null
  6
  14
  14

  $ alphonsec run sums_maintained --fault-seed 10 --audit 2>&1 >/dev/null | grep failures
  failures:       1 (retries: 0, poisoned: 0)

  $ alphonsec compare fib_cached | head -3
  Theorem 5.1 (same output): HOLDS
  conventional steps: 573120
  alphonse steps:     300 (1910.40x)

The Algorithm 2 display form inserts access/modify/call at exactly the
sites the static analysis marks:

  $ alphonsec transform sums_maintained | grep -E 'access|modify|call' | head -6
    RETURN access(a) + access(b) + access(c)
    modify(a, 1);
    modify(b, 2);
    modify(c, 3);
    Print(call(calc.total),
    modify(b, 10);

  $ alphonsec analyze sums_maintained | grep -A3 'instrumentation'
  == instrumentation sites (6.1) ==
  reads:  7 tracked / 5 untracked
  writes: 4 tracked / 2 untracked
  calls:  3 tracked / 3 untracked

Parse and type errors are positioned:

  $ echo 'MODULE M; BEGIN x := 1 END M.' | alphonsec check -
  1:17: unknown variable x
  [1]

  $ echo 'MODULE M; BEGIN 1 + END M.' | alphonsec check -
  1:21: syntax error: expected an expression, found END
  [1]

The dependency graph of a run, as DOT:

  $ alphonsec graph sums_maintained | head -4
  digraph alphonse {
    rankdir=BT;
    n3 [label="global:c#3", shape=box];
    n2 [label="global:b#2", shape=box];

Telemetry: --trace records the session as Chrome trace-event JSON (the
program output is unchanged), and the profile subcommand reports where
re-execution time went:

  $ alphonsec run sums_maintained --trace trace.json 2>/dev/null
  6
  14
  14

  $ cut -c1-16 trace.json
  {"traceEvents":[

  $ alphonsec compare sums_maintained --trace trace2.json 2>/dev/null | head -1
  Theorem 5.1 (same output): HOLDS

  $ cut -c1-16 trace2.json
  {"traceEvents":[

  $ alphonsec profile sums_maintained | head -2
  == per-instance profile: hottest first ==
  instance                      execs  re-ex  marks       self      total    p50    p90    p99

  $ alphonsec profile sums_maintained --dot | head -2
  digraph alphonse {
    rankdir=BT;

The provenance query names the mutated cell behind a re-execution
(timestamps elided for reproducibility):

  $ alphonsec profile sums_maintained --why Total | sed 's/t=[0-9.]*s/t=X/'
  == provenance: last execution of Total ==
  global:b#2 written (t=X)
  -> marked Total#0 inconsistent (by #2, t=X)
  -> re-executed Total#0 (t=X)

  $ alphonsec profile sums_maintained --why NoSuch
  no recorded execution of "NoSuch" (is it an instance name? try --dot to see them)
  [1]

Production observability: the metrics subcommand replays the module
under an attached registry and dumps the engine's counters in
Prometheus text (or --json). The counters are deterministic for a
deterministic program:

  $ alphonsec metrics sums_maintained 2>/dev/null | grep -A 3 'HELP alphonse_executions_total'
  # HELP alphonse_executions_total instance executions
  # TYPE alphonse_executions_total counter
  alphonse_executions_total{kind="first"} 1
  alphonse_executions_total{kind="re"} 1

  $ alphonsec metrics sums_maintained 2>/dev/null | grep '^alphonse_cache_hits_total'
  alphonse_cache_hits_total 1

  $ alphonsec metrics sums_maintained --json 2>/dev/null | cut -c1-31
  {"schema":"alphonse-metrics/1",

Every run keeps a flight recorder armed: a quarantine (here injected
with --fault-seed) writes a timestamped incident report and prints a
notice on stderr (stamps scrubbed for reproducibility):

  $ rm -rf incidents
  $ alphonsec run sums_maintained --fault-seed 10 2>&1 >/dev/null | grep incident | sed -E 's/[0-9]{8}T[0-9]{6}-[0-9]{3}/STAMP/'
  [incident report: incidents/incident-STAMP.json]

  $ cut -c1-32 incidents/incident-*.json
  {"schema":"alphonse-incident/1",

  $ grep -oh '"kind":"quarantine"' incidents/incident-*.json
  "kind":"quarantine"

The full analysis report: listings are sorted, --effects adds each
procedure's transitive may-read/may-write summary, and the
effect-sharpened 6.1 analysis untracks the never-written globals p1 and
p3 (compare the read counts with --no-sharpen):

  $ alphonsec analyze unchecked_lookup --effects
  == incremental procedures ==
    Lookup (*MAINTAINED*)
  == reachable from incremental code ==
    Lookup
    Walk
  == tracked globals ==
    p2
    target
  == tracked fields ==
  == interprocedural effects (transitive) ==
    <main>         reads {global:p1 global:p2 global:p3 global:probe global:target} writes {global:p2 global:probe global:target}
    Lookup         reads {global:p1 global:p2 global:p3 global:target} writes {-}
    Walk           reads {global:p1 global:p2 global:p3} writes {-}
  == instrumentation sites (6.1) ==
  reads:  5 tracked / 7 untracked
  writes: 3 tracked / 2 untracked
  calls:  3 tracked / 4 untracked
  == static partitions (6.3) ==
    global:p2                component 1
    global:target            component 3
    proc:Lookup              component 3
    type:Probe               component 3

  $ alphonsec analyze unchecked_lookup --no-sharpen | grep -A3 'instrumentation'
  == instrumentation sites (6.1) ==
  reads:  7 tracked / 5 untracked
  writes: 3 tracked / 2 untracked
  calls:  3 tracked / 4 untracked

Sharpening never changes what the program computes (Theorem 5.1):

  $ alphonsec compare unchecked_lookup | head -1
  Theorem 5.1 (same output): HOLDS

The graph view without storage nodes shows the instance lattice only:

  $ alphonsec graph fib_cached --storage=false | head -5
  digraph alphonse {
    rankdir=BT;
    n21 [label="Fib#21", shape=ellipse];
    n20 [label="Fib#20", shape=ellipse];
    n19 [label="Fib#19", shape=ellipse];

Node identities survive a durable export→import cycle: the DOT of a
recovered engine reports the snapshot's stable ids (the exporting
engine's node ids), not the restored arena's internal indices — a
profile heat overlay or a provenance query recorded before the restore
still addresses the same nodes after it:

  $ printf 'set A1 6\nset A2 =A1*7\nget A2\n' > dotedits.txt
  $ alphonsec sheet dotedits.txt --state dotst 2>/dev/null
  A2 = 42
  $ alphonsec sheet /dev/null --state dotst --checkpoint 2>&1 | tail -1
  [checkpoint: snap-00000002.json]
  $ alphonsec recover --state dotst --dot
  recovery: snapshot=snap-00000002.json replayed=0 discarded=0 txns-discarded=0 verified=yes degraded=no
  digraph alphonse {
    rankdir=BT;
    n3 [label="cell:A2#3", shape=box];
    n2 [label="cell-value(A2)#2", shape=ellipse];
    n1 [label="cell:A1#1", shape=box];
    n0 [label="cell-value(A1)#0", shape=ellipse];
    n3 -> n2;
    n1 -> n0;
    n0 -> n2;
  }

The incremental-correctness linter: every built-in sample is clean
(unchecked_lookup and spreadsheet each carry hidden info-severity
ALF005 notes about never-written tracked storage):

  $ for s in $(alphonsec samples); do alphonsec lint --warn-error "$s" || echo "FAILED: $s"; done
  HeightTree: clean
  AvlTree: clean
  Fib: clean
  Sums: clean
  Unchecked: clean (2 info finding(s) hidden; --info)
  Zoo: clean
  Spread: clean (1 info finding(s) hidden; --info)
  Sieve: clean
  Dist: clean

  $ alphonsec lint unchecked_lookup --info
  Unchecked:4:5: info ALF005: tracked global p1 is never written — its dependency edges can never fire
  Unchecked:4:5: info ALF005: tracked global p3 is never written — its dependency edges can never fire
  Unchecked: 0 error(s), 0 warning(s), 2 info

The deliberately-unsound fixture is flagged at the offending UNCHECKED
expression, and --warn-error turns the finding into a failure:

  $ alphonsec lint ../examples/unsound_unchecked.alf
  Unsound:36:10: warning ALF001: UNCHECKED prunes dependencies on global:cache, which incremental code may write — the enclosing instance will not be invalidated by those writes
  Unsound: 0 error(s), 1 warning(s), 0 info

  $ alphonsec lint --warn-error ../examples/unsound_unchecked.alf
  Unsound:36:10: warning ALF001: UNCHECKED prunes dependencies on global:cache, which incremental code may write — the enclosing instance will not be invalidated by those writes
  Unsound: 0 error(s), 1 warning(s), 0 info
  [1]

…and it is not just a lint opinion — the program genuinely violates
Theorem 5.1 (the probe result goes stale):

  $ alphonsec compare ../examples/unsound_unchecked.alf | head -1
  Theorem 5.1 (same output): VIOLATED

JSON output and per-rule selection:

  $ alphonsec lint --json ../examples/unsound_unchecked.alf | head -c 80
  {"module":"Unsound","findings":[{"rule":"ALF001","severity":"warning","line":36,

  $ alphonsec lint --disable ALF001 --warn-error ../examples/unsound_unchecked.alf
  Unsound: clean

  $ alphonsec lint --rules | head -2
  ALF001  warning   unsound UNCHECKED
      An (*UNCHECKED*) expression may read storage that reachable incremental code may write. The pragma prunes exactly that dependency, so the enclosing instance is never invalidated when the incremental portion itself changes the pruned location — the cached result goes silently stale (paper 6.4).
