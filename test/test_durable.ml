(* The durability acceptance suite.

   The crash-kill sweep is the centerpiece: run each workload once under
   a counting hook to learn how many times the durability layer pokes
   its kill sites, then re-run it once per poke with a one-shot hook
   that dies at that exact byte-risking point. After every simulated
   crash the harness abandons ALL in-memory state, recovers from disk
   into a fresh engine + domain, and checks that the recovered state
   (a) passes the invariant auditor, (b) answers queries identically to
   the exhaustive oracle, and (c) is exactly the state after some prefix
   of the journaled mutations — a crash may lose a tail, never reorder
   or corrupt. Around the sweep: WAL framing/rotation/torn-tail unit
   tests and snapshot corruption drills (checksum rejection must fall
   back a generation, degrade, and still serve correct answers). *)

module Engine = Alphonse.Engine
module Var = Alphonse.Var
module Func = Alphonse.Func
module Faults = Alphonse.Faults
module Wal = Alphonse.Wal
module Durable = Alphonse.Durable
module Json = Alphonse.Json
module S = Spreadsheet.Sheet
module Avl = Trees.Avl
module Binary = Attrgram.Binary

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Scratch state directories (inside dune's sandbox cwd)               *)
(* ------------------------------------------------------------------ *)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d = Filename.concat "durable-state" (Fmt.str "d%04d" !n) in
    rm_rf d;
    d

(* ------------------------------------------------------------------ *)
(* WAL unit tests                                                      *)
(* ------------------------------------------------------------------ *)

let entry i =
  Json.Obj [ ("op", Json.Str "e"); ("i", Json.Num (float_of_int i)) ]

let replay_all ?from_segment dir =
  let acc = ref [] in
  let n, status = Wal.replay ?from_segment dir (fun j -> acc := j :: !acc) in
  (n, status, List.rev !acc)

let test_crc32_known_answer () =
  (* the standard CRC-32 check value *)
  checki "crc32(123456789)" 0xCBF43926 (Wal.crc32 "123456789");
  checki "crc32(empty)" 0 (Wal.crc32 "")

let test_frame_roundtrip () =
  let dir = fresh_dir () in
  let w = Wal.open_ dir in
  for i = 1 to 5 do
    Wal.append ~sync:(i mod 2 = 0) w (entry i)
  done;
  Wal.close w;
  let n, status, entries = replay_all dir in
  checki "all entries decoded" 5 n;
  checkb "journal complete" true (status = Wal.Complete);
  checks "entries round-trip in order"
    (String.concat "," (List.init 5 (fun i -> Json.to_string (entry (i + 1)))))
    (String.concat "," (List.map Json.to_string entries))

let test_rotation () =
  let dir = fresh_dir () in
  (* tiny segments: every append after the first in a segment rotates *)
  let w = Wal.open_ ~segment_limit:48 dir in
  for i = 1 to 7 do
    Wal.append w (entry i)
  done;
  Wal.close w;
  checkb "rotation produced several segments" true
    (List.length (Wal.segments dir) > 1);
  let n, status, entries = replay_all dir in
  checki "all entries decoded across segments" 7 n;
  checkb "journal complete" true (status = Wal.Complete);
  checks "order preserved across rotation"
    (Json.to_string (entry 7))
    (Json.to_string (List.nth entries 6))

let test_torn_tail_tolerated () =
  let dir = fresh_dir () in
  let w = Wal.open_ dir in
  Wal.append w (entry 1);
  Wal.append w (entry 2);
  Wal.close w;
  (* simulate a crash mid-frame: append half of a valid frame by hand *)
  let seg = snd (List.hd (List.rev (Wal.segments dir))) in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 seg in
  output_string oc "AW\x00\x00";
  close_out oc;
  let n, status, _ = replay_all dir in
  checki "intact prefix decoded" 2 n;
  (match status with
  | Wal.Torn b ->
    checkb "torn tail is in the final segment" true b.Wal.b_final_segment
  | Wal.Complete -> Alcotest.fail "torn tail not detected")

let test_kill_at_torn_leaves_torn_tail () =
  let dir = fresh_dir () in
  let w = Wal.open_ dir in
  Wal.append w (entry 1);
  let hook, fired = Faults.kill_nth ~only:"wal-torn" 1 in
  Wal.set_kill_hook w (Some hook);
  (match Wal.append w (entry 2) with
  | () -> Alcotest.fail "expected Killed"
  | exception Faults.Killed site -> checks "died at" "wal-torn" site);
  checkb "hook fired" true !fired;
  Wal.close w;
  (* the half-written, flushed frame must be on disk and tolerated *)
  let n, status, _ = replay_all dir in
  checki "only the intact entry survives" 1 n;
  (match status with
  | Wal.Torn b -> checkb "final segment" true b.Wal.b_final_segment
  | Wal.Complete -> Alcotest.fail "no torn tail on disk")

let test_mid_journal_corruption_detected () =
  let dir = fresh_dir () in
  let w = Wal.open_ ~segment_limit:48 dir in
  for i = 1 to 6 do
    Wal.append w (entry i)
  done;
  Wal.close w;
  let segs = Wal.segments dir in
  checkb "several segments" true (List.length segs > 2);
  (* flip one payload byte in the FIRST segment *)
  let seg0 = snd (List.hd segs) in
  let bytes =
    In_channel.with_open_bin seg0 In_channel.input_all |> Bytes.of_string
  in
  Bytes.set bytes (Bytes.length bytes - 2)
    (Char.chr (Char.code (Bytes.get bytes (Bytes.length bytes - 2)) lxor 0xff));
  Out_channel.with_open_bin seg0 (fun oc ->
      Out_channel.output_bytes oc bytes);
  let _, status, _ = replay_all dir in
  match status with
  | Wal.Torn b ->
    checkb "flagged as mid-journal corruption" false b.Wal.b_final_segment;
    checks "crc mismatch" "crc mismatch" b.Wal.b_reason
  | Wal.Complete -> Alcotest.fail "corruption not detected"

(* ------------------------------------------------------------------ *)
(* Durable workloads                                                   *)
(* ------------------------------------------------------------------ *)

(* A durable workload is a fresh world: an engine, its domain's
   persistable, a hook installer routing domain mutations into a
   session's journal, a deterministic list of mutations, and two
   observation functions — the incremental render and the from-scratch
   oracle over the same state. *)
type dctx = {
  eng : Engine.t;
  persist : Durable.persistable;
  arm : Durable.t -> unit;
  ops : (unit -> unit) array;
  render : unit -> string;
  oracle : unit -> string;
}

let sheet_dctx () =
  let s = S.create () in
  let ops =
    [|
      (fun () -> S.set s "A1" "4");
      (fun () -> S.set s "A2" "=A1*A1");
      (fun () -> S.set s "A3" "=A2+A1");
      (fun () -> S.set s "B1" "=SUM(A1:A3)");
      (fun () -> S.set s "B2" "=B1/A1");
      (fun () -> S.set s "A1" "0");
      (fun () -> S.set s "A1" "2");
      (fun () -> S.set s "A3" "=SQRT(A2-100)");
    |]
  in
  let coords = [ (0, 0); (0, 1); (0, 2); (1, 0); (1, 1) ] in
  let show value () =
    String.concat ";"
      (List.map (fun c -> Fmt.str "%a" S.pp_value (value s c)) coords)
  in
  {
    eng = S.engine s;
    persist = S.persist s;
    arm = (fun d -> S.set_journal s (Some (Durable.journal_op d)));
    ops;
    render = show S.value;
    oracle = show S.exhaustive_value;
  }

let avl_dctx () =
  let eng = Engine.create () in
  let t = Avl.create eng in
  let ops =
    Array.of_list
      (List.map (fun k () -> Avl.insert t k) [ 5; 2; 8; 1; 9; 3; 7 ]
      @ [
          (fun () -> Avl.rebalance t);
          (fun () -> Avl.delete t 2);
          (fun () -> Avl.insert t 6);
          (fun () -> Avl.rebalance t);
        ])
  in
  let shape height () =
    Fmt.str "%a/h%d/%b%b"
      Fmt.(Dump.list int)
      (Avl.to_list t) (height ())
      (Avl.is_ordered (Avl.root t))
      (Avl.is_balanced (Avl.root t))
  in
  {
    eng;
    persist = Avl.persist t;
    arm = (fun d -> Avl.set_journal t (Some (Durable.journal_op d)));
    ops;
    render = shape (fun () -> Avl.height t);
    oracle = shape (fun () -> Avl.check_height (Avl.root t));
  }

let doc_dctx () =
  let eng = Engine.create () in
  let g = Binary.create eng in
  let d = Binary.doc g in
  let ops =
    [|
      (fun () -> Binary.doc_init d "1101.01");
      (fun () -> Binary.doc_set_bit d 0 0);
      (fun () -> Binary.doc_set_bit d 2 1);
      (fun () -> Binary.doc_set_bit d 5 0);
      (fun () -> Binary.doc_set_bit d 3 1);
    |]
  in
  let show value () =
    if Binary.doc_render d = "" then "(empty)"
    else Fmt.str "%s=%g" (Binary.doc_render d) (value ())
  in
  {
    eng;
    persist = Binary.persist_doc d;
    arm = (fun s -> Binary.doc_set_journal d (Some (Durable.journal_op s)));
    ops;
    render = show (fun () -> Binary.doc_value d);
    oracle = show (fun () -> Binary.doc_exhaustive d);
  }

(* A raw var/func diamond with a hand-rolled persistable: the engine's
   own export/import path exercised without any domain library. *)
let diamond_dctx () =
  let eng = Engine.create () in
  let a = Var.create eng ~name:"a" 0 in
  let b = Var.create eng ~name:"b" 0 in
  let z = Var.create eng ~name:"z" 0 in
  let f = Func.create eng ~name:"f" (fun _ () -> Var.get a + Var.get b) in
  let g = Func.create eng ~name:"g" (fun _ () -> Var.get a * Var.get b) in
  let top =
    Func.create eng ~name:"top" (fun _ () -> Func.call f () + Func.call g ())
  in
  let other = Func.create eng ~name:"other" (fun _ () -> Var.get z - 1) in
  let vars = [ ("a", a); ("b", b); ("z", z) ] in
  let jref = ref None in
  let put name v = Var.set (List.assoc name vars) v in
  let set name v =
    (match !jref with
    | Some j ->
      j
        (Json.Obj
           [
             ("op", Json.Str "set");
             ("n", Json.Str name);
             ("v", Json.Num (float_of_int v));
           ])
    | None -> ());
    put name v
  in
  let persist =
    {
      Durable.p_save =
        (fun () ->
          Json.Obj
            (("schema", Json.Str "test-diamond/1")
            :: List.map
                 (fun (n, v) -> (n, Json.Num (float_of_int (Var.get v))))
                 vars));
      p_load =
        (fun j ->
          List.iter
            (fun (n, v) ->
              match Option.bind (Json.member n j) Json.to_float with
              | Some x -> Var.set v (int_of_float x)
              | None -> ())
            vars);
      p_apply =
        (fun j ->
          match
            ( Option.bind (Json.member "n" j) Json.to_str,
              Option.bind (Json.member "v" j) Json.to_float )
          with
          | Some n, Some x -> put n (int_of_float x)
          | _ -> invalid_arg "diamond: bad journal op");
    }
  in
  let ops =
    Array.of_list
      (List.map
         (fun (n, v) () -> set n v)
         [
           ("a", 2); ("b", 5); ("z", 100); ("a", 3); ("b", -4); ("z", 7);
           ("a", 10); ("a", 3);
         ])
  in
  {
    eng;
    persist;
    arm = (fun s -> jref := Some (Durable.journal_op s));
    ops;
    render =
      (fun () ->
        Engine.stabilize eng;
        Fmt.str "%d/%d" (Func.call top ()) (Func.call other ()));
    oracle =
      (fun () ->
        let av = Var.get a and bv = Var.get b in
        Fmt.str "%d/%d" (av + bv + (av * bv)) (Var.get z - 1));
  }

(* ------------------------------------------------------------------ *)
(* Engine export→import round-trips                                    *)
(* ------------------------------------------------------------------ *)

(* The raw [Engine.export]/[Engine.import] cycle on the arena-backed
   representation, without the Durable layer in between: domain values
   travel through the workload's persistable, the engine snapshot rides
   on top — the same split [Durable.recover] performs. Equality is
   checked at three strengths: observable (render = pre-export render =
   exhaustive oracle), structural (the restored engine re-exports the
   identical node table and edge set, ids included — the stable-id
   remap at work), and hygienic (the invariant auditor stays clean). *)

let snap_nodes j =
  match Option.bind (Json.member "nodes" j) Json.to_list with
  | None -> []
  | Some ns ->
    List.filter_map
      (fun nj ->
        match
          ( Option.bind (Json.member "id" nj) Json.to_float,
            Option.bind (Json.member "name" nj) Json.to_str,
            Option.bind (Json.member "kind" nj) Json.to_str )
        with
        | Some id, Some name, Some kind ->
          Some (Fmt.str "%d:%s:%s" (int_of_float id) name kind)
        | _ -> None)
      ns
    |> List.sort compare

let snap_edges j =
  match Option.bind (Json.member "edges" j) Json.to_list with
  | None -> []
  | Some es ->
    List.filter_map
      (fun ej ->
        match Option.map (List.filter_map Json.to_float) (Json.to_list ej) with
        | Some [ a; b ] -> Some (Fmt.str "%d->%d" (int_of_float a) (int_of_float b))
        | _ -> None)
      es
    |> List.sort compare

(* [strict] additionally demands a perfect name match (no warnings) and
   id-for-id re-export equality. The AVL workload runs non-strict: its
   node names are allocation-order artifacts, so a rebuilt tree matches
   by behavior, not by name (see the note on [Avl.persist]). *)
let export_import_roundtrip ?(strict = true) (make : unit -> dctx) () =
  let c = make () in
  Array.iter (fun op -> op ()) c.ops;
  let before = c.render () in
  let domain = c.persist.Durable.p_save () in
  let snap = Engine.export c.eng in
  let c2 = make () in
  c2.persist.Durable.p_load domain;
  (* materialize the graph: storage appears on first tracked access,
     instances on first call — import matches only live nodes *)
  ignore (c2.render ());
  let matched, warnings = Engine.import c2.eng snap in
  if strict then begin
    checks "no import warnings" "" (String.concat "; " warnings);
    checki "every snapshot node matched" (List.length (snap_nodes snap))
      matched
  end;
  checks "render round-trips" before (c2.render ());
  checks "oracle agrees" (c2.oracle ()) (c2.render ());
  (match Engine.audit_errors c2.eng with
  | [] -> ()
  | errs ->
    Alcotest.failf "audit after import: %s" (String.concat "; " errs));
  if strict then begin
    let snap2 = Engine.export c2.eng in
    checks "node table re-exports identically (stable ids survive)"
      (String.concat ";" (snap_nodes snap))
      (String.concat ";" (snap_nodes snap2));
    checks "edge set re-exports identically"
      (String.concat ";" (snap_edges snap))
      (String.concat ";" (snap_edges snap2))
  end

(* ------------------------------------------------------------------ *)
(* The crash-kill sweep                                                *)
(* ------------------------------------------------------------------ *)

let kill_sweep (make : unit -> dctx) () =
  (* the acceptable recovered states: the render after every prefix of
     the mutation list (a crash loses a tail, never reorders) *)
  let prefixes =
    let c = make () in
    let acc = ref [ c.render () ] in
    Array.iter
      (fun op ->
        op ();
        acc := c.render () :: !acc)
      c.ops;
    List.rev !acc
  in
  let mid = Array.length (make ()).ops / 2 in
  let run_ops c s =
    Array.iteri
      (fun i op ->
        op ();
        if i = mid then ignore (Durable.checkpoint s))
      c.ops
  in
  (* pass 1: count the kill-site pokes of a clean durable run *)
  let total =
    let c = make () in
    let dir = fresh_dir () in
    let s = Durable.attach ~dir c.eng c.persist in
    c.arm s;
    let hook, read = Faults.counting_hook () in
    Durable.set_kill_hook s (Some hook);
    run_ops c s;
    Durable.detach s;
    rm_rf dir;
    Faults.total (read ())
  in
  checkb "workload exercises kill sites" true (total > 0);
  (* pass 2: die at every single poke, recover, verify *)
  for k = 1 to total do
    let dir = fresh_dir () in
    let c = make () in
    let s = Durable.attach ~dir c.eng c.persist in
    c.arm s;
    let hook, fired = Faults.kill_nth k in
    Durable.set_kill_hook s (Some hook);
    (match run_ops c s with
    | () -> ()
    | exception Faults.Killed _ -> ());
    checkb (Fmt.str "kill %d/%d fired" k total) true !fired;
    (* the process is dead: abandon every byte of in-memory state and
       recover from disk into a fresh engine + domain *)
    Durable.detach s;
    let c2 = make () in
    let o = Durable.recover ~dir c2.eng c2.persist in
    (match Engine.audit_errors c2.eng with
    | [] -> ()
    | errs ->
      Alcotest.failf "kill %d/%d: audit after recovery: %s" k total
        (String.concat "; " errs));
    let r = c2.render () in
    checks
      (Fmt.str "kill %d/%d: recovered incremental = exhaustive oracle" k total)
      (c2.oracle ()) r;
    checkb
      (Fmt.str "kill %d/%d: recovered state %S is an op prefix%s" k total r
         (if o.Durable.o_degraded then " (degraded)" else ""))
      true
      (List.mem r prefixes);
    rm_rf dir
  done

(* ------------------------------------------------------------------ *)
(* Snapshot round-trips and corruption drills                          *)
(* ------------------------------------------------------------------ *)

let test_snapshot_roundtrip () =
  let dir = fresh_dir () in
  let c = sheet_dctx () in
  let s = Durable.attach ~dir c.eng c.persist in
  c.arm s;
  Array.iter (fun op -> op ()) c.ops;
  let before = c.render () in
  let snap = Durable.checkpoint s in
  checkb "snapshot file exists" true (Sys.file_exists snap);
  Durable.detach s;
  let c2 = sheet_dctx () in
  let o = Durable.recover ~dir c2.eng c2.persist in
  checkb "restored from the snapshot" true (o.Durable.o_snapshot <> None);
  checkb "engine nodes matched by stable name" true (o.Durable.o_matched > 0);
  checkb "verified" true o.Durable.o_verified;
  checkb "not degraded" false o.Durable.o_degraded;
  checki "nothing to replay after a checkpoint" 0 o.Durable.o_replayed;
  checks "state round-trips" before (c2.render ());
  checks "oracle agrees" (c2.oracle ()) (c2.render ());
  rm_rf dir

let corrupt_last_byte path =
  let bytes =
    In_channel.with_open_bin path In_channel.input_all |> Bytes.of_string
  in
  let i = Bytes.length bytes - 2 in
  Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor 0xff));
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc bytes)

let test_corrupt_snapshot_falls_back_a_generation () =
  let dir = fresh_dir () in
  let c = sheet_dctx () in
  let s = Durable.attach ~dir c.eng c.persist in
  c.arm s;
  (* two generations: ops, checkpoint, more ops, checkpoint *)
  Array.iteri
    (fun i op ->
      op ();
      if i = 3 then ignore (Durable.checkpoint s))
    c.ops;
  let newest = Durable.checkpoint s in
  let final = c.render () in
  Durable.detach s;
  corrupt_last_byte newest;
  let c2 = sheet_dctx () in
  let o = Durable.recover ~dir c2.eng c2.persist in
  checki "newest snapshot rejected" 1 (List.length o.Durable.o_rejected);
  checkb "older generation restored" true (o.Durable.o_snapshot <> None);
  checkb "degraded (integrity was violated)" true o.Durable.o_degraded;
  (* the answers are still the CORRECT answers — merely cold *)
  checks "no data lost: replay covers the gap" final (c2.render ());
  checks "oracle agrees" (c2.oracle ()) (c2.render ());
  (match Engine.audit_errors c2.eng with
  | [] -> ()
  | errs -> Alcotest.failf "audit: %s" (String.concat "; " errs));
  rm_rf dir

let test_all_snapshots_corrupt_never_crashes () =
  let dir = fresh_dir () in
  let c = sheet_dctx () in
  let s = Durable.attach ~dir c.eng c.persist in
  c.arm s;
  Array.iteri
    (fun i op ->
      op ();
      if i = 3 then ignore (Durable.checkpoint s))
    c.ops;
  ignore (Durable.checkpoint s);
  Durable.detach s;
  List.iter
    (fun (_, path) -> corrupt_last_byte path)
    (Durable.snapshots dir);
  let c2 = sheet_dctx () in
  let o = Durable.recover ~dir c2.eng c2.persist in
  checki "both snapshots rejected" 2 (List.length o.Durable.o_rejected);
  checkb "nothing restored" true (o.Durable.o_snapshot = None);
  checkb "degraded" true o.Durable.o_degraded;
  (* whatever journal suffix survives replays onto the empty state; the
     result must still be internally consistent *)
  checks "incremental agrees with exhaustive" (c2.oracle ()) (c2.render ());
  (match Engine.audit_errors c2.eng with
  | [] -> ()
  | errs -> Alcotest.failf "audit: %s" (String.concat "; " errs));
  rm_rf dir

let test_empty_dir_recovers_to_empty () =
  let dir = fresh_dir () in
  let c = sheet_dctx () in
  let o = Durable.recover ~dir c.eng c.persist in
  checkb "no snapshot" true (o.Durable.o_snapshot = None);
  checki "nothing replayed" 0 o.Durable.o_replayed;
  checkb "verified" true o.Durable.o_verified;
  checkb "not degraded" false o.Durable.o_degraded

let test_uncommitted_txn_discarded () =
  let dir = fresh_dir () in
  let c = diamond_dctx () in
  let s = Durable.attach ~dir c.eng c.persist in
  c.arm s;
  c.ops.(0) ();
  c.ops.(1) ();
  Engine.stabilize c.eng;
  let committed = c.render () in
  (* a transaction that journals its Begin and some ops but dies before
     the Commit marker: simulate by killing at the commit append *)
  let pokes = ref 0 in
  Durable.set_kill_hook s
    (Some
       (fun site ->
         if site = "wal-append" then begin
           incr pokes;
           (* ops 2 and 3 journal inside the txn; die on the next
              append after them — the Commit marker *)
           if !pokes > 3 then raise (Faults.Killed site)
         end));
  (match
     Engine.transact c.eng (fun () ->
         c.ops.(2) ();
         c.ops.(3) ())
   with
  | _ -> Alcotest.fail "expected Killed"
  | exception Faults.Killed _ -> ());
  Durable.detach s;
  let c2 = diamond_dctx () in
  let o = Durable.recover ~dir c2.eng c2.persist in
  checkb "uncommitted transaction dropped" true
    (o.Durable.o_discarded_txns >= 1);
  checks "recovered state predates the transaction" committed (c2.render ());
  rm_rf dir

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "durable"
    [
      ( "wal",
        [
          Alcotest.test_case "crc32 known answer" `Quick
            test_crc32_known_answer;
          Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "segment rotation" `Quick test_rotation;
          Alcotest.test_case "torn tail tolerated" `Quick
            test_torn_tail_tolerated;
          Alcotest.test_case "kill at wal-torn leaves a torn tail" `Quick
            test_kill_at_torn_leaves_torn_tail;
          Alcotest.test_case "mid-journal corruption detected" `Quick
            test_mid_journal_corruption_detected;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "checkpoint/recover roundtrip" `Quick
            test_snapshot_roundtrip;
          Alcotest.test_case "corrupt snapshot falls back a generation"
            `Quick test_corrupt_snapshot_falls_back_a_generation;
          Alcotest.test_case "all snapshots corrupt: degrade, no crash"
            `Quick test_all_snapshots_corrupt_never_crashes;
          Alcotest.test_case "empty dir recovers to empty" `Quick
            test_empty_dir_recovers_to_empty;
          Alcotest.test_case "uncommitted transaction discarded" `Quick
            test_uncommitted_txn_discarded;
        ] );
      ( "export-import",
        [
          Alcotest.test_case "diamond round-trip" `Quick
            (export_import_roundtrip diamond_dctx);
          Alcotest.test_case "spreadsheet round-trip" `Quick
            (export_import_roundtrip sheet_dctx);
          Alcotest.test_case "avl round-trip" `Quick
            (export_import_roundtrip ~strict:false avl_dctx);
        ] );
      ( "kill-sweep",
        [
          Alcotest.test_case "diamond" `Slow (kill_sweep diamond_dctx);
          Alcotest.test_case "spreadsheet" `Slow (kill_sweep sheet_dctx);
          Alcotest.test_case "avl" `Slow (kill_sweep avl_dctx);
          Alcotest.test_case "attribute grammar" `Slow (kill_sweep doc_dctx);
        ] );
    ]
