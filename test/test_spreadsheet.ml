(* Tests for the §7.2 spreadsheet: formula parser, evaluation semantics,
   incremental recalculation counts, cycle handling and recovery, and a
   randomized differential test against the exhaustive oracle. *)

module Engine = Alphonse.Engine
module F = Spreadsheet.Formula
module S = Spreadsheet.Sheet

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let executions eng = (Engine.stats eng).Engine.executions

let value_testable =
  Alcotest.testable
    (fun ppf v -> S.pp_value ppf v)
    (fun a b ->
      match (a, b) with
      | S.Num x, S.Num y -> Float.abs (x -. y) < 1e-9
      | a, b -> a = b)

let check_value = Alcotest.check value_testable

(* ------------------------------------------------------------------ *)
(* Formula parsing                                                     *)
(* ------------------------------------------------------------------ *)

let parse_ok src =
  match F.parse src with
  | Ok e -> e
  | Error msg -> Alcotest.failf "parse %S failed: %s" src msg

let test_parse_basics () =
  checkb "number" true (parse_ok "42" = F.Num 42.);
  checkb "float" true (parse_ok "3.5" = F.Num 3.5);
  checkb "cell" true (parse_ok "B3" = F.Cell (1, 2));
  checkb "two-letter col" true (parse_ok "AA1" = F.Cell (26, 0));
  checkb "precedence" true
    (parse_ok "1+2*3"
    = F.Binop (F.Add, F.Num 1., F.Binop (F.Mul, F.Num 2., F.Num 3.)));
  checkb "parens" true
    (parse_ok "(1+2)*3"
    = F.Binop (F.Mul, F.Binop (F.Add, F.Num 1., F.Num 2.), F.Num 3.));
  checkb "unary minus" true (parse_ok "-A1" = F.Neg (F.Cell (0, 0)));
  checkb "power right assoc" true
    (parse_ok "2^3^2"
    = F.Binop (F.Pow, F.Num 2., F.Binop (F.Pow, F.Num 3., F.Num 2.)));
  checkb "comparison" true
    (parse_ok "A1<=5" = F.Binop (F.Le, F.Cell (0, 0), F.Num 5.));
  checkb "ne" true (parse_ok "A1<>5" = F.Binop (F.Ne, F.Cell (0, 0), F.Num 5.))

let test_parse_functions () =
  checkb "sum range" true
    (parse_ok "SUM(A1:B3)" = F.Agg (F.Sum, { c0 = 0; r0 = 0; c1 = 1; r1 = 2 }));
  checkb "reversed range normalized" true
    (parse_ok "SUM(B3:A1)" = F.Agg (F.Sum, { c0 = 0; r0 = 0; c1 = 1; r1 = 2 }));
  checkb "single-cell range" true
    (parse_ok "COUNT(C2)" = F.Agg (F.Count, { c0 = 2; r0 = 1; c1 = 2; r1 = 1 }));
  checkb "if" true
    (parse_ok "IF(A1,1,2)" = F.If (F.Cell (0, 0), F.Num 1., F.Num 2.));
  checkb "abs" true (parse_ok "ABS(-3)" = F.Fn1 (F.Abs, F.Neg (F.Num 3.)));
  checkb "case-insensitive fn" true
    (parse_ok "sum(A1:A2)" = F.Agg (F.Sum, { c0 = 0; r0 = 0; c1 = 0; r1 = 1 }))

let test_parse_errors () =
  let bad src = match F.parse src with Ok _ -> false | Error _ -> true in
  checkb "empty" true (bad "");
  checkb "trailing" true (bad "1 2");
  checkb "unknown fn" true (bad "FOO(1)");
  checkb "unclosed" true (bad "(1+2");
  checkb "lone op" true (bad "*3");
  checkb "bad char" true (bad "1 $ 2")

let test_cell_names () =
  Alcotest.(check string) "A1" "A1" (F.name_of_cell (0, 0));
  Alcotest.(check string) "Z10" "Z10" (F.name_of_cell (25, 9));
  Alcotest.(check string) "AA1" "AA1" (F.name_of_cell (26, 0));
  Alcotest.(check string) "AB12" "AB12" (F.name_of_cell (27, 11))

(* Round trip: pretty-printing then parsing is the identity. *)
let rec expr_gen depth =
  let open QCheck.Gen in
  if depth = 0 then
    oneof
      [
        map (fun n -> F.Num (float_of_int n)) (int_bound 100);
        map2 (fun c r -> F.Cell (c, r)) (int_bound 30) (int_bound 30);
      ]
  else
    frequency
      [
        (2, expr_gen 0);
        ( 2,
          map3
            (fun op a b -> F.Binop (op, a, b))
            (oneofl [ F.Add; F.Sub; F.Mul; F.Div; F.Lt; F.Ge; F.Ne ])
            (expr_gen (depth - 1))
            (expr_gen (depth - 1)) );
        (1, map (fun e -> F.Neg e) (expr_gen (depth - 1)));
        ( 1,
          map
            (fun (a, (c0, r0), (c1, r1)) ->
              F.Agg
                ( a,
                  {
                    c0 = min c0 c1;
                    r0 = min r0 r1;
                    c1 = max c0 c1;
                    r1 = max r0 r1;
                  } ))
            (triple
               (oneofl [ F.Sum; F.Avg; F.Min; F.Max; F.Count ])
               (pair (int_bound 10) (int_bound 10))
               (pair (int_bound 10) (int_bound 10))) );
        ( 1,
          map3
            (fun a b c -> F.If (a, b, c))
            (expr_gen (depth - 1))
            (expr_gen (depth - 1))
            (expr_gen (depth - 1)) );
        ( 1,
          map2
            (fun f e -> F.Fn1 (f, e))
            (oneofl [ F.Abs; F.Sqrt; F.Round ])
            (expr_gen (depth - 1)) );
      ]

let prop_parse_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip"
    (QCheck.make ~print:F.to_string (expr_gen 3))
    (fun e ->
      match F.parse (F.to_string e) with Ok e' -> e' = e | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Sheet evaluation                                                    *)
(* ------------------------------------------------------------------ *)

let test_sheet_basics () =
  let s = S.create () in
  S.set s "A1" "10";
  S.set s "A2" "32";
  S.set s "A3" "=A1+A2";
  check_value "sum" (S.Num 42.) (S.value_at s "A3");
  S.set s "A1" "100";
  check_value "after edit" (S.Num 132.) (S.value_at s "A3");
  check_value "blank cell" S.Empty (S.value_at s "Z9");
  S.set s "B1" "=Z9+1" (* blank reads as 0 *);
  check_value "blank in arithmetic" (S.Num 1.) (S.value_at s "B1")

let test_sheet_aggregates () =
  let s = S.create () in
  for r = 1 to 10 do
    S.set s (Printf.sprintf "A%d" r) (string_of_int r)
  done;
  S.set s "B1" "=SUM(A1:A10)";
  S.set s "B2" "=AVG(A1:A10)";
  S.set s "B3" "=MIN(A1:A10)";
  S.set s "B4" "=MAX(A1:A10)";
  S.set s "B5" "=COUNT(A1:A10)";
  check_value "sum" (S.Num 55.) (S.value_at s "B1");
  check_value "avg" (S.Num 5.5) (S.value_at s "B2");
  check_value "min" (S.Num 1.) (S.value_at s "B3");
  check_value "max" (S.Num 10.) (S.value_at s "B4");
  check_value "count" (S.Num 10.) (S.value_at s "B5");
  (* blanks are skipped by aggregates *)
  S.set s "A5" "";
  check_value "sum skips blank" (S.Num 50.) (S.value_at s "B1");
  check_value "count skips blank" (S.Num 9.) (S.value_at s "B5")

let test_sheet_errors () =
  let s = S.create () in
  S.set s "A1" "=1/0";
  check_value "div0" (S.Error S.Div_by_zero) (S.value_at s "A1");
  S.set s "A2" "=SQRT(-1)";
  check_value "sqrt neg" (S.Error S.Bad_arg) (S.value_at s "A2");
  S.set s "A3" "=A1+1" (* errors propagate *);
  check_value "propagates" (S.Error S.Div_by_zero) (S.value_at s "A3");
  S.set s "A4" "=FOO(";
  (match S.value_at s "A4" with
  | S.Error (S.Parse _) -> ()
  | v -> Alcotest.failf "expected parse error, got %a" S.pp_value v);
  S.set s "A5" "hello";
  (match S.value_at s "A5" with
  | S.Error (S.Parse _) -> ()
  | v -> Alcotest.failf "expected parse error, got %a" S.pp_value v);
  (* errors inside an aggregated range *)
  S.set s "B1" "=SUM(A1:A3)";
  check_value "agg surfaces error" (S.Error S.Div_by_zero) (S.value_at s "B1")

(* Errors are plain values: they flow through multi-level dependents,
   and fixing the origin cell heals the whole cone incrementally. *)
let test_sheet_error_recovery () =
  let s = S.create () in
  S.set s "A1" "=1/0";
  S.set s "B1" "=A1*2";
  S.set s "C1" "=B1+A1";
  check_value "origin" (S.Error S.Div_by_zero) (S.value_at s "A1");
  check_value "level 1" (S.Error S.Div_by_zero) (S.value_at s "B1");
  check_value "level 2" (S.Error S.Div_by_zero) (S.value_at s "C1");
  S.set s "A1" "4";
  check_value "origin healed" (S.Num 4.) (S.value_at s "A1");
  check_value "cone healed" (S.Num 12.) (S.value_at s "C1");
  (* a reference that fails to parse becomes an error value too *)
  S.set s "A1" "=B$Z";
  (match S.value_at s "C1" with
  | S.Error (S.Parse _) -> ()
  | v -> Alcotest.failf "expected parse error downstream, got %a" S.pp_value v);
  S.set s "A1" "1";
  check_value "healed again" (S.Num 3.) (S.value_at s "C1");
  (* incremental and exhaustive agree throughout error states *)
  S.set s "A1" "=1/0";
  List.iter
    (fun c ->
      Alcotest.(check bool)
        "inc = exhaustive" true
        (S.value s c = S.exhaustive_value s c))
    (S.coords s)

let test_sheet_if () =
  let s = S.create () in
  S.set s "A1" "5";
  S.set s "B1" "=IF(A1>3, 100, 200)";
  check_value "then" (S.Num 100.) (S.value_at s "B1");
  S.set s "A1" "2";
  check_value "else" (S.Num 200.) (S.value_at s "B1")

let test_sheet_render () =
  let s = S.create () in
  S.set s "A1" "10";
  S.set s "B2" "=A1*2";
  let grid = S.render s in
  let contains sub str =
    let n = String.length sub and m = String.length str in
    let rec go i = i + n <= m && (String.sub str i n = sub || go (i + 1)) in
    go 0
  in
  checkb "has headers" true (contains "A" grid && contains "B" grid);
  checkb "has value 10" true (contains "10" grid);
  checkb "has computed 20" true (contains "20" grid);
  Alcotest.(check string) "empty sheet" "(empty sheet)\n" (S.render (S.create ()))

let test_sheet_cycles () =
  let s = S.create () in
  S.set s "A1" "=B1";
  S.set s "B1" "=A1";
  check_value "cycle A" (S.Error S.Cycle) (S.value_at s "A1");
  check_value "cycle B" (S.Error S.Cycle) (S.value_at s "B1");
  (* break the cycle at B: both cells must recover *)
  S.set s "B1" "7";
  check_value "B recovered" (S.Num 7.) (S.value_at s "B1");
  check_value "A recovered" (S.Num 7.) (S.value_at s "A1");
  (* self-cycle *)
  S.set s "C1" "=C1+1";
  check_value "self cycle" (S.Error S.Cycle) (S.value_at s "C1");
  S.set s "C1" "=A1+1";
  check_value "self recovered" (S.Num 8.) (S.value_at s "C1")

(* Regression: [Inspect.parallel_profile] on a graph with a cycle. The
   level computation cuts cycles at level 0, so an instance on the cut
   used to land on level -1 and vanish from the width table (its width
   went missing while total_instances still counted it). *)
let test_parallel_profile_cycle () =
  let s = S.create () in
  S.set s "A1" "=B1";
  S.set s "B1" "=A1";
  check_value "cycle A" (S.Error S.Cycle) (S.value_at s "A1");
  S.set s "C1" "=A1+1";
  check_value "downstream of cycle" (S.Error S.Cycle) (S.value_at s "C1");
  let p = Alphonse.Inspect.parallel_profile (S.engine s) in
  let widths = p.Alphonse.Inspect.level_widths in
  checkb "no negative levels: widths account for every instance" true
    (List.fold_left ( + ) 0 widths = p.Alphonse.Inspect.total_instances);
  checkb "all widths non-negative" true (List.for_all (fun w -> w >= 0) widths);
  checkb "critical path positive" true (p.Alphonse.Inspect.critical_path >= 1)

let test_sheet_incremental_chain () =
  let s = S.create () in
  let eng = S.engine s in
  S.set s "A1" "1";
  for r = 2 to 100 do
    S.set_raw s (0, r - 1) (Printf.sprintf "=A%d+1" (r - 1))
  done;
  check_value "chain end" (S.Num 100.) (S.value s (0, 99));
  let before = executions eng in
  (* editing the middle re-executes only the downstream half *)
  S.set s "A50" "1000";
  check_value "after middle edit" (S.Num 1050.) (S.value s (0, 99));
  let cost = executions eng - before in
  checkb (Fmt.str "chain edit cost %d ≈ downstream" cost) true
    (cost >= 50 && cost <= 55);
  (* A50 is now a constant, so the tail no longer depends on the head:
     a head edit leaves the queried tail value a pure cache hit *)
  let before = executions eng in
  S.set s "A1" "2";
  check_value "after head edit" (S.Num 1050.) (S.value s (0, 99));
  checki "tail query untouched by head edit" 0 (executions eng - before);
  (* the upstream half re-executes only when something demands it *)
  check_value "upstream demanded" (S.Num 50.) (S.value s (0, 48));
  let cost = executions eng - before in
  checkb (Fmt.str "upstream cost %d ≈ 49" cost) true
    (cost >= 48 && cost <= 52)

let test_sheet_fan_in () =
  let s = S.create () in
  let eng = S.engine s in
  for r = 1 to 64 do
    S.set_raw s (0, r - 1) (string_of_int r)
  done;
  S.set s "B1" "=SUM(A1:A64)";
  check_value "sum" (S.Num 2080.) (S.value_at s "B1");
  let before = executions eng in
  S.set s "A32" "0";
  check_value "after edit" (S.Num 2048.) (S.value_at s "B1");
  (* exactly A32's value instance and the sum re-execute *)
  checki "only A32 and the sum re-executed" 2 (executions eng - before)

let test_sheet_cutoff () =
  let s = S.create ~strategy:Engine.Eager () in
  let eng = S.engine s in
  S.set s "A1" "5";
  S.set s "B1" "=A1>0";
  S.set s "C1" "=B1*100";
  check_value "c1" (S.Num 100.) (S.value_at s "C1");
  let before = executions eng in
  S.set s "A1" "9" (* still positive: B1 recomputes to the same 1 *);
  check_value "unchanged" (S.Num 100.) (S.value_at s "C1");
  (* A1's value and B1 re-execute; quiescence stops propagation at B1,
     so C1 is never re-executed *)
  checki "propagation stopped at B1" 2 (executions eng - before)

(* ------------------------------------------------------------------ *)
(* Randomized differential test                                        *)
(* ------------------------------------------------------------------ *)

(* Random edits over a 4×4 grid, with formulas referencing random cells
   and ranges (cycles permitted); after every edit, every cell must agree
   with the exhaustive oracle. *)
let random_input rand =
  match Random.State.int rand 6 with
  | 0 -> string_of_int (Random.State.int rand 20)
  | 1 -> "" (* clear *)
  | 2 ->
    Printf.sprintf "=%s+%d"
      (F.name_of_cell (Random.State.int rand 4, Random.State.int rand 4))
      (Random.State.int rand 10)
  | 3 ->
    Printf.sprintf "=%s*%s"
      (F.name_of_cell (Random.State.int rand 4, Random.State.int rand 4))
      (F.name_of_cell (Random.State.int rand 4, Random.State.int rand 4))
  | 4 ->
    let c0 = Random.State.int rand 4 and r0 = Random.State.int rand 4 in
    let c1 = Random.State.int rand 4 and r1 = Random.State.int rand 4 in
    Printf.sprintf "=SUM(%s:%s)"
      (F.name_of_cell (min c0 c1, min r0 r1))
      (F.name_of_cell (max c0 c1, max r0 r1))
  | _ ->
    Printf.sprintf "=IF(%s>5,%s,%d)"
      (F.name_of_cell (Random.State.int rand 4, Random.State.int rand 4))
      (F.name_of_cell (Random.State.int rand 4, Random.State.int rand 4))
      (Random.State.int rand 10)

let values_agree a b =
  match (a, b) with
  | S.Num x, S.Num y -> Float.abs (x -. y) < 1e-6
  | a, b -> a = b

let prop_sheet_differential =
  QCheck.Test.make ~name:"sheet incremental = exhaustive oracle"
    QCheck.(make Gen.(pair int (int_range 5 40)))
    (fun (seed, steps) ->
      let rand = Random.State.make [| seed |] in
      let s = S.create () in
      let ok = ref true in
      for _ = 1 to steps do
        let c = Random.State.int rand 4 and r = Random.State.int rand 4 in
        S.set_raw s (c, r) (random_input rand);
        for c = 0 to 3 do
          for r = 0 to 3 do
            let inc = S.value s (c, r) in
            let ora = S.exhaustive_value s (c, r) in
            if not (values_agree inc ora) then ok := false
          done
        done
      done;
      !ok)

(* Under Eager evaluation, cyclic sheets may settle to a fixpoint rather
   than an error (see the Sheet doc comment), so this generator only
   writes formulas referencing cells strictly earlier in column-major
   order — guaranteeing acyclicity. *)
let random_acyclic_input rand (c, r) =
  let idx = (c * 4) + r in
  if idx = 0 then string_of_int (Random.State.int rand 20)
  else
    let earlier () =
      let k = Random.State.int rand idx in
      (k / 4, k mod 4)
    in
    match Random.State.int rand 5 with
    | 0 -> string_of_int (Random.State.int rand 20)
    | 1 -> ""
    | 2 ->
      Printf.sprintf "=%s+%d"
        (F.name_of_cell (earlier ()))
        (Random.State.int rand 10)
    | 3 ->
      Printf.sprintf "=%s*%s"
        (F.name_of_cell (earlier ()))
        (F.name_of_cell (earlier ()))
    | _ ->
      Printf.sprintf "=IF(%s>5,%s,%d)"
        (F.name_of_cell (earlier ()))
        (F.name_of_cell (earlier ()))
        (Random.State.int rand 10)

let prop_sheet_differential_eager =
  QCheck.Test.make ~name:"sheet incremental = oracle (eager+partitions)"
    QCheck.(make Gen.(pair int (int_range 5 30)))
    (fun (seed, steps) ->
      let rand = Random.State.make [| seed |] in
      let s = S.create ~strategy:Engine.Eager ~partitioning:true () in
      let ok = ref true in
      for _ = 1 to steps do
        let c = Random.State.int rand 4 and r = Random.State.int rand 4 in
        S.set_raw s (c, r) (random_acyclic_input rand (c, r));
        for c = 0 to 3 do
          for r = 0 to 3 do
            let inc = S.value s (c, r) in
            let ora = S.exhaustive_value s (c, r) in
            if not (values_agree inc ora) then ok := false
          done
        done
      done;
      !ok)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "spreadsheet"
    [
      ( "formula",
        Alcotest.test_case "basics" `Quick test_parse_basics
        :: Alcotest.test_case "functions" `Quick test_parse_functions
        :: Alcotest.test_case "errors" `Quick test_parse_errors
        :: Alcotest.test_case "cell names" `Quick test_cell_names
        :: qsuite [ prop_parse_roundtrip ] );
      ( "sheet",
        [
          Alcotest.test_case "basics" `Quick test_sheet_basics;
          Alcotest.test_case "aggregates" `Quick test_sheet_aggregates;
          Alcotest.test_case "errors" `Quick test_sheet_errors;
          Alcotest.test_case "error recovery" `Quick test_sheet_error_recovery;
          Alcotest.test_case "if" `Quick test_sheet_if;
          Alcotest.test_case "cycles" `Quick test_sheet_cycles;
          Alcotest.test_case "parallel profile with cycle" `Quick
            test_parallel_profile_cycle;
          Alcotest.test_case "render" `Quick test_sheet_render;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "chain" `Quick test_sheet_incremental_chain;
          Alcotest.test_case "fan-in" `Quick test_sheet_fan_in;
          Alcotest.test_case "quiescence cutoff" `Quick test_sheet_cutoff;
        ] );
      ( "differential",
        qsuite [ prop_sheet_differential; prop_sheet_differential_eager ] );
    ]
